package codec

import (
	"errors"
	"math"

	"repro/internal/grid"
	"repro/internal/zfp"
)

// zfpCodec adapts internal/zfp (transform-based, fixed-rate) to the Codec
// interface. Two behaviours:
//
//   - Options.Rate > 0: plain fixed-rate compression, ZFP's native mode.
//   - Options.Rate == 0, ErrorBound > 0: the adapter searches for the
//     cheapest rate whose measured max error meets the bound (geometric
//     ladder then bisection refinement). This is what lets a fixed-rate
//     codec consume the configurator's per-partition error-bound plans —
//     the bound is best effort: if even the maximum rate misses it, the
//     max-rate frame is returned, which is precisely the failure mode the
//     paper cites for rejecting fixed-rate codecs (Sec. 2.2).
type zfpCodec struct{}

func (zfpCodec) ID() ID { return ZFP }

// Rate search bounds: ZFP accepts rates in [0.5, 32] bits/value.
const (
	zfpMinRate     = 0.5
	zfpMaxRate     = 32
	zfpRefineSteps = 3
)

func (zfpCodec) Compress(data []float32, nx, ny, nz int, opt Options, _ *Scratch) (Frame, error) {
	if err := validateDims(data, nx, ny, nz); err != nil {
		return nil, err
	}
	f := &grid.Field3D{Nx: nx, Ny: ny, Nz: nz, Data: data}
	if opt.Rate > 0 {
		c, err := zfp.Compress(f, zfp.Options{Rate: opt.Rate})
		if err != nil {
			return nil, err
		}
		return zfpFrame{c: c}, nil
	}
	if opt.ErrorBound <= 0 {
		return nil, errors.New("codec: zfp needs Options.Rate or Options.ErrorBound")
	}
	if opt.Mode != ABS {
		return nil, errors.New("codec: zfp rate search supports ABS error bounds only")
	}
	return compressBounded(f, opt.ErrorBound)
}

// compressBounded finds the cheapest fixed rate meeting an absolute error
// bound: double the rate until the measured max error fits, then bisect
// between the last failing and first passing rate to shave bits.
func compressBounded(f *grid.Field3D, eb float64) (Frame, error) {
	try := func(rate float64) (*zfp.Compressed, float64, error) {
		c, err := zfp.Compress(f, zfp.Options{Rate: rate})
		if err != nil {
			return nil, 0, err
		}
		r, err := zfp.Decompress(c)
		if err != nil {
			return nil, 0, err
		}
		return c, maxAbsErr(f.Data, r.Data), nil
	}
	lo := 0.0 // highest rate known to miss the bound
	var hit, last *zfp.Compressed
	hi := zfpMaxRate + 1.0
	for rate := zfpMinRate; rate <= zfpMaxRate; rate *= 2 {
		c, maxErr, err := try(rate)
		if err != nil {
			return nil, err
		}
		last = c
		if maxErr <= eb {
			hit, hi = c, rate
			break
		}
		lo = rate
	}
	if hit == nil {
		// Even the maximum rate misses the bound: the ladder's final frame
		// (rate 32) is the best the codec can do; return it with
		// ErrorBound 0 to signal "no guarantee".
		return zfpFrame{c: last}, nil
	}
	for i := 0; i < zfpRefineSteps && hi-lo > 0.25 && lo >= zfpMinRate; i++ {
		mid := (lo + hi) / 2
		c, maxErr, err := try(mid)
		if err != nil {
			return nil, err
		}
		if maxErr <= eb {
			hit, hi = c, mid
		} else {
			lo = mid
		}
	}
	return zfpFrame{c: hit, eb: eb}, nil
}

func maxAbsErr(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func (zfpCodec) Parse(body []byte) (Frame, error) {
	c, err := zfp.Parse(body)
	if err != nil {
		return nil, err
	}
	return zfpFrame{c: c}, nil
}

// zfpFrame wraps a fixed-rate stream. eb is the bound the rate search
// verified, kept in memory only: ZFP's native serialization has no bound
// field, so parsed frames report ErrorBound 0 (no guarantee recorded).
type zfpFrame struct {
	c  *zfp.Compressed
	eb float64
}

func (f zfpFrame) CodecID() ID           { return ZFP }
func (f zfpFrame) Dims() (int, int, int) { return f.c.Nx, f.c.Ny, f.c.Nz }
func (f zfpFrame) N() int                { return f.c.N() }
func (f zfpFrame) CompressedSize() int   { return f.c.CompressedSize() }
func (f zfpFrame) BitRate() float64      { return f.c.BitRate() }
func (f zfpFrame) Ratio() float64        { return f.c.Ratio() }
func (f zfpFrame) ErrorBound() float64   { return f.eb }
func (f zfpFrame) Bytes() []byte         { return f.c.Bytes() }

func (f zfpFrame) Decompress() ([]float32, error) {
	g, err := zfp.Decompress(f.c)
	if err != nil {
		return nil, err
	}
	return g.Data, nil
}
