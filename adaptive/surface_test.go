package adaptive_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"repro/adaptive"
	"repro/adaptive/codecs"
)

// TestFacadeSurface drives the re-exported toolkit end to end on one
// small synthetic snapshot: generation, file I/O, budgets, the in situ
// protocol, analysis metrics, and the Foresight harness. Together with
// the examples (built and run in CI) this keeps every facade entry point
// exercised.
func TestFacadeSurface(t *testing.T) {
	ctx := context.Background()

	if len(adaptive.FieldNames()) != 6 {
		t.Fatalf("FieldNames: %v", adaptive.FieldNames())
	}

	// Generation + snapshot file round trip.
	snap, err := adaptive.GenerateSnapshot(adaptive.SynthParams{N: 32, Seed: 4, Redshift: 42})
	if err != nil {
		t.Fatal(err)
	}
	density, err := snap.Field(adaptive.FieldBaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.nyx")
	if err := adaptive.WriteSnapshotFile(path, &adaptive.SnapshotFile{Redshift: 42, Fields: snap.Fields}); err != nil {
		t.Fatal(err)
	}
	loaded, err := adaptive.ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Fields) != len(snap.Fields) {
		t.Fatalf("snapshot file kept %d of %d fields", len(loaded.Fields), len(snap.Fields))
	}
	seq, err := adaptive.GenerateSequence(adaptive.SynthParams{N: 16, Seed: 4}, []float64{54, 42})
	if err != nil || len(seq) != 2 {
		t.Fatalf("GenerateSequence: %v (%d snapshots)", err, len(seq))
	}

	// A system with every engine-side option set.
	sys, err := adaptive.New(
		adaptive.WithPartitionDim(8),
		adaptive.WithWorkers(2),
		adaptive.WithCodec("sz"),
		adaptive.WithMode(codecs.ABS),
		adaptive.WithPredictor(codecs.Lorenzo3D),
		adaptive.WithQuantizeBeforePredict(false),
		adaptive.WithClampFactor(4),
		adaptive.WithStrategy(adaptive.EqualDerivative),
		adaptive.WithCalibration(adaptive.CalibrationOptions{Partitions: 8, Mode: adaptive.ModelScan}),
		adaptive.WithModelGuardBand(0.25),
		adaptive.WithRelAvgEB(0.1),
		adaptive.WithFieldWorkers(1),
		adaptive.WithRedshift(42),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Codec() != "sz" || sys.PartitionDim() != 8 {
		t.Fatalf("resolved config: codec %q dim %d", sys.Codec(), sys.PartitionDim())
	}

	// Budgets.
	avgEB, err := adaptive.SpectrumBudget(density, adaptive.BudgetOptions{})
	if err != nil || avgEB <= 0 {
		t.Fatalf("SpectrumBudget: %v (%g)", err, avgEB)
	}
	hcfg := adaptive.DefaultHaloConfig()
	p, err := adaptive.PartitionerForBrickDim(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := adaptive.HaloBudget(density, hcfg, 0.01, 1.0, p)
	if err != nil {
		t.Fatal(err)
	}

	// Features → plan without a second field scan.
	cal, err := sys.Calibrate(ctx, density)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Mode != adaptive.ModelScan && cal.Mode != adaptive.ProbeLadder {
		t.Fatalf("calibration mode %v is neither model-scan nor a recorded fallback", cal.Mode)
	}
	features, err := sys.Features(ctx, density)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sys.PlanFromFeatures(features, cal, adaptive.PlanOptions{AvgEB: avgEB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adaptive.MassFaultEstimate(hb.TBoundary, hb.RefEB, hb.BoundaryCells, plan.EBs); err != nil {
		t.Fatal(err)
	}

	// In situ protocol.
	cf, st, err := sys.CompressInSitu(ctx, density, cal, adaptive.InSituOptions{Ranks: 4, AvgEB: avgEB})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ranks != 4 || cf.CompressedSize() <= 0 {
		t.Fatalf("in situ: ranks %d size %d", st.Ranks, cf.CompressedSize())
	}

	// Analysis metrics on the reconstruction.
	recon, err := cf.Decompress(ctx)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := adaptive.ComputeSpectrum(density, adaptive.SpectrumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adaptive.ComputeSpectrum(recon, adaptive.SpectrumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adaptive.SpectrumRatios(orig, rec); err != nil {
		t.Fatal(err)
	}
	dev, err := adaptive.SpectrumMaxDeviation(orig, rec, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dev > 0.05 {
		t.Fatalf("spectrum deviation %g implausibly large for the budget bound", dev)
	}
	if adaptive.SigmaFFT3D(32, 0.1) <= 0 {
		t.Fatal("SigmaFFT3D returned a non-positive sigma")
	}
	origCat, err := adaptive.FindHalos(density, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	reconCat, err := adaptive.FindHalos(recon, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	match := adaptive.MatchHalos(origCat, reconCat, 2.0, 32, 32, 32)
	if match.Matched+match.Lost != origCat.Count() {
		t.Fatalf("halo match bookkeeping: %d matched + %d lost != %d halos",
			match.Matched, match.Lost, origCat.Count())
	}

	// Foresight harness + CSV.
	ev := sys.Foresight()
	ebs, err := adaptive.GeometricGrid(avgEB/4, avgEB*4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ev.Sweep(ctx, adaptive.FieldBaryonDensity, density, ebs)
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := adaptive.WriteMetricsCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != len(rows)+1 {
		t.Fatalf("CSV has %d lines for %d rows", lines, len(rows))
	}

	// Streaming over the synthetic evolving source, driver state visible.
	stream, err := adaptive.NewSynthStream(adaptive.SynthStreamParams{
		Base:   adaptive.SynthParams{N: 16, Seed: 4},
		Steps:  2,
		Fields: []string{adaptive.FieldBaryonDensity},
	})
	if err != nil {
		t.Fatal(err)
	}
	streamSys := newSystem(t, adaptive.WithPartitionDim(8))
	run, err := streamSys.Run(ctx, stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Steps) != 2 || run.Ratio() <= 0 {
		t.Fatalf("run: %d steps ratio %g", len(run.Steps), run.Ratio())
	}
	if streamSys.Calibration(adaptive.FieldBaryonDensity) == nil {
		t.Fatal("driver calibration state not visible through the facade")
	}
	if streamSys.Calibration("never-seen") != nil {
		t.Fatal("calibration for an unseen field")
	}
}

// TestSynthStreamFromExternalFields covers the external-fields stream
// constructor the adaptivecfg streaming mode uses.
func TestSynthStreamFromExternalFields(t *testing.T) {
	f := testField(16)
	src, err := adaptive.NewSynthStreamFrom(
		map[string]*adaptive.Field{"rho": f},
		adaptive.SynthStreamParams{Steps: 3, Fields: []string{"rho"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		snap, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if snap["rho"] == nil {
			t.Fatal("step missing the base field")
		}
		n++
	}
	if n != 3 {
		t.Fatalf("stream yielded %d steps, want 3", n)
	}
	if _, err := adaptive.New(adaptive.WithGridN(-1)); !errors.Is(err, adaptive.ErrBadConfig) {
		t.Fatalf("WithGridN(-1): %v", err)
	}
}

// TestExperimentContextRejectsEngineOnlyOptions pins the no-silent-drop
// rule: options an experiment run cannot express must fail loudly
// instead of producing tables for a configuration nobody asked for.
func TestExperimentContextRejectsEngineOnlyOptions(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  adaptive.Option
	}{
		{"WithClampFactor", adaptive.WithClampFactor(8)},
		{"WithStrategy", adaptive.WithStrategy(adaptive.PaperEq16)},
		{"WithPolicy", adaptive.WithPolicy(adaptive.CalibrateEveryStep)},
		{"WithOnStep", adaptive.WithOnStep(func(*adaptive.StepStats) {})},
	} {
		_, err := adaptive.NewExperimentContext(tc.opt)
		if !errors.Is(err, adaptive.ErrBadConfig) {
			t.Errorf("%s silently accepted by NewExperimentContext: %v", tc.name, err)
		} else if !strings.Contains(err.Error(), tc.name) {
			t.Errorf("%s rejection does not name the option: %v", tc.name, err)
		}
	}
}
