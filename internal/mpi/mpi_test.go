package mpi

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/apierr"
)

func TestRunBasics(t *testing.T) {
	var count atomic.Int64
	err := Run(8, func(c *Comm) error {
		if c.Size() != 8 {
			t.Errorf("size = %d", c.Size())
		}
		if c.Rank() < 0 || c.Rank() >= 8 {
			t.Errorf("rank = %d", c.Rank())
		}
		if c.Epoch() != 0 {
			t.Errorf("epoch = %d", c.Epoch())
		}
		if got := c.Alive(); len(got) != 8 {
			t.Errorf("alive = %v", got)
		}
		count.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 8 {
		t.Fatalf("ran %d ranks", count.Load())
	}
}

func TestRunRejectsZeroSize(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestRunPropagatesError(t *testing.T) {
	want := errors.New("rank failure")
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

// TestPanicPoisonsWorld is the deadlock regression test: rank 1 panics
// while every peer is blocked in a barrier it will never enter. Before
// world-poisoning the peers hung forever; now each must fail fast with the
// typed rank-failure error identifying the dead rank.
func TestPanicPoisonsWorld(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- Run(4, func(c *Comm) error {
			if c.Rank() == 1 {
				panic("rank 1 dies before its first collective")
			}
			// Peers head straight into a barrier the dead rank never
			// reaches.
			if err := c.Barrier(); err == nil {
				t.Error("barrier succeeded with a dead rank")
			} else {
				var rf *apierr.RankFailedError
				if !errors.As(err, &rf) {
					t.Errorf("barrier error not typed: %v", err)
				} else if rf.Rank != 1 {
					t.Errorf("failed rank = %d, want 1", rf.Rank)
				}
				if !errors.Is(err, apierr.ErrRankFailed) {
					t.Errorf("sentinel not in chain: %v", err)
				}
			}
			// The world stays poisoned: later collectives fail too,
			// immediately.
			if _, err := c.Allreduce(1, OpSum); !errors.Is(err, apierr.ErrRankFailed) {
				t.Errorf("post-poison allreduce: %v", err)
			}
			if _, err := c.Bcast(1, 0); !errors.Is(err, apierr.ErrRankFailed) {
				t.Errorf("post-poison bcast: %v", err)
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("panic not surfaced from Run")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: survivors never unblocked after rank panic")
	}
}

// TestErrorReturnPoisonsWorld: a rank returning an error mid-protocol is
// as gone as a panicked one; peers in a collective must not wait for it.
func TestErrorReturnPoisonsWorld(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- Run(3, func(c *Comm) error {
			if c.Rank() == 2 {
				return errors.New("rank 2 bails out")
			}
			_, err := c.Allgather(float64(c.Rank()))
			if !errors.Is(err, apierr.ErrRankFailed) {
				t.Errorf("allgather with departed rank: %v", err)
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("rank error not surfaced from Run")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: survivors never unblocked after rank error")
	}
}

func TestAllreduceSum(t *testing.T) {
	err := Run(16, func(c *Comm) error {
		got, err := c.Allreduce(float64(c.Rank()), OpSum)
		if err != nil {
			return err
		}
		if got != 120 { // 0+1+...+15
			t.Errorf("rank %d: sum = %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMinMax(t *testing.T) {
	err := Run(7, func(c *Comm) error {
		v := float64(c.Rank()*3 - 5)
		if got, err := c.Allreduce(v, OpMin); err != nil || got != -5 {
			t.Errorf("min = %v err = %v", got, err)
		}
		if got, err := c.Allreduce(v, OpMax); err != nil || got != 13 {
			t.Errorf("max = %v err = %v", got, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceRepeated(t *testing.T) {
	// Back-to-back collectives must not interfere (slot reuse is fenced).
	err := Run(5, func(c *Comm) error {
		for iter := 0; iter < 100; iter++ {
			got, err := c.Allreduce(float64(c.Rank()+iter), OpSum)
			if err != nil {
				return err
			}
			want := float64(10 + 5*iter) // Σ ranks + size·iter
			if got != want {
				t.Errorf("iter %d: %v != %v", iter, got, want)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceDeterministicOrder(t *testing.T) {
	// Floating-point sums depend on order; our contract is rank order.
	vals := []float64{1e16, 1, -1e16, 1}
	want := ((vals[0] + vals[1]) + vals[2]) + vals[3]
	for trial := 0; trial < 10; trial++ {
		err := Run(4, func(c *Comm) error {
			got, err := c.Allreduce(vals[c.Rank()], OpSum)
			if err != nil {
				return err
			}
			if got != want {
				t.Errorf("trial %d: %v != %v", trial, got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceSlice(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		v := []float64{float64(c.Rank()), 1, -float64(c.Rank())}
		got, err := c.AllreduceSlice(v, OpSum)
		if err != nil {
			return err
		}
		if got[0] != 6 || got[1] != 4 || got[2] != -6 {
			t.Errorf("rank %d: %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSliceLengthMismatch(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		v := make([]float64, 2+c.Rank())
		_, err := c.AllreduceSlice(v, OpSum)
		return err
	})
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestAllreduceSliceLengthMismatchRecovery: a length mismatch is a usage
// error, not a dead rank — every rank gets the error and the world stays
// healthy, so subsequent collectives still work.
func TestAllreduceSliceLengthMismatchRecovery(t *testing.T) {
	var mismatches atomic.Int64
	err := Run(3, func(c *Comm) error {
		v := make([]float64, 2+c.Rank())
		if _, err := c.AllreduceSlice(v, OpSum); err != nil {
			if errors.Is(err, apierr.ErrRankFailed) {
				t.Errorf("mismatch mis-typed as rank failure: %v", err)
			}
			mismatches.Add(1)
		}
		// The world is not poisoned: collectives keep working.
		got, err := c.Allreduce(1, OpSum)
		if err != nil {
			return err
		}
		if got != 3 {
			t.Errorf("post-mismatch allreduce = %v", got)
		}
		same, err := c.AllreduceSlice([]float64{float64(c.Rank())}, OpMax)
		if err != nil {
			return err
		}
		if len(same) != 1 || same[0] != 2 {
			t.Errorf("post-mismatch slice reduce = %v", same)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if mismatches.Load() != 3 {
		t.Fatalf("mismatch seen by %d ranks, want all 3", mismatches.Load())
	}
}

func TestAllgather(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		got, err := c.Allgather(float64(c.Rank() * c.Rank()))
		if err != nil {
			return err
		}
		for r := 0; r < 6; r++ {
			if got[r] != float64(r*r) {
				t.Errorf("rank %d: got[%d] = %v", c.Rank(), r, got[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherSlice(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		mine := make([]float64, c.Rank()+1)
		for i := range mine {
			mine[i] = float64(c.Rank())
		}
		got, err := c.AllgatherSlice(mine)
		if err != nil {
			return err
		}
		want := []float64{0, 1, 1, 2, 2, 2}
		if len(got) != len(want) {
			t.Errorf("len %d", len(got))
			return nil
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("got %v", got)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBcast broadcasts from a nonzero root: every rank, including ranks
// below the root, must receive the root's value, repeatedly.
func TestBcast(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		v := -1.0
		if c.Rank() == 2 {
			v = 42
		}
		if got, err := c.Bcast(v, 2); err != nil || got != 42 {
			t.Errorf("rank %d: bcast = %v err = %v", c.Rank(), got, err)
		}
		// Again from the highest rank, with per-rank garbage elsewhere.
		v = float64(-c.Rank() - 1)
		if c.Rank() == 4 {
			v = 7
		}
		if got, err := c.Bcast(v, 4); err != nil || got != 7 {
			t.Errorf("rank %d: bcast root 4 = %v err = %v", c.Rank(), got, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if _, err := c.Bcast(1, 5); err == nil {
			t.Error("invalid root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, []float64{3.14, 2.71})
		}
		got, err := c.Recv(0)
		if err != nil {
			return err
		}
		if len(got) != 2 || got[0] != 3.14 || got[1] != 2.71 {
			t.Errorf("recv %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesData(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{1}
			if err := c.Send(1, buf); err != nil {
				return err
			}
			buf[0] = 999 // must not affect the receiver
			return nil
		}
		got, err := c.Recv(0)
		if err != nil {
			return err
		}
		if got[0] != 1 {
			t.Errorf("send aliased caller buffer: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvInvalidRank(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if err := c.Send(7, nil); err == nil {
			t.Error("send to invalid rank accepted")
		}
		if _, err := c.Recv(-1); err == nil {
			t.Error("recv from invalid rank accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendFullBufferFailsOnPoison: rank 0 stuffs rank 1's buffer full and
// keeps sending while rank 1 dies without ever receiving. The blocked Send
// must fail fast with the typed error, not wait forever for a drain.
func TestSendFullBufferFailsOnPoison(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- Run(2, func(c *Comm) error {
			if c.Rank() == 1 {
				panic("receiver dies with a full inbox")
			}
			var err error
			for i := 0; i < p2pBuffer+1; i++ {
				if err = c.Send(1, []float64{float64(i)}); err != nil {
					break
				}
			}
			if !errors.Is(err, apierr.ErrRankFailed) {
				t.Errorf("blocked send: err = %v", err)
			}
			return nil
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("receiver panic not surfaced")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: send to full buffer never unblocked")
	}
}

// TestRecvDrainsBeforeFailing: messages delivered before the poison stay
// readable; only then does Recv report the failure.
func TestRecvDrainsBeforeFailing(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, []float64{5}); err != nil {
				return err
			}
			return errors.New("sender leaves after sending")
		}
		// Wait for the world to be poisoned so the race is fixed.
		<-c.Transport().(*inproc).w.done
		got, err := c.Recv(0)
		if err != nil {
			t.Errorf("pre-poison message lost: %v", err)
			return nil
		}
		if len(got) != 1 || got[0] != 5 {
			t.Errorf("recv %v", got)
		}
		if _, err := c.Recv(0); !errors.Is(err, apierr.ErrRankFailed) {
			t.Errorf("drained recv: err = %v", err)
		}
		return nil
	})
	if err == nil {
		t.Fatal("sender error not surfaced")
	}
}

func TestBarrierOrdering(t *testing.T) {
	// After a barrier, every rank must observe all pre-barrier writes.
	var stage [8]atomic.Int64
	err := Run(8, func(c *Comm) error {
		stage[c.Rank()].Store(1)
		if err := c.Barrier(); err != nil {
			return err
		}
		for r := 0; r < 8; r++ {
			if stage[r].Load() != 1 {
				t.Errorf("rank %d saw rank %d pre-barrier", c.Rank(), r)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCount(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if _, err := c.Allreduce(1, OpSum); err != nil {
			return err
		}
		if _, err := c.Allgather(1); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		coll, _ := c.Stats()
		if coll != 2 {
			t.Errorf("collectives = %d, want 2", coll)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGlobalMeanPattern(t *testing.T) {
	// The paper's exact pattern: each rank computes a local mean, the
	// global mean comes from one Allreduce of (sum, count).
	local := []float64{10, 20, 30, 40}
	err := Run(4, func(c *Comm) error {
		sum, err := c.Allreduce(local[c.Rank()], OpSum)
		if err != nil {
			return err
		}
		n, err := c.Allreduce(1, OpSum)
		if err != nil {
			return err
		}
		mean := sum / n
		if math.Abs(mean-25) > 1e-12 {
			t.Errorf("global mean %v", mean)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	if OpSum.String() != "sum" || OpMin.String() != "min" || OpMax.String() != "max" {
		t.Error("op names wrong")
	}
	if Op(9).String() == "" {
		t.Error("unknown op has empty name")
	}
}

func TestOpApply(t *testing.T) {
	cases := []struct {
		op   Op
		a, b float64
		want float64
	}{
		{OpSum, 2, 3, 5},
		{OpMin, 2, 3, 2},
		{OpMin, 3, 2, 2},
		{OpMax, 2, 3, 3},
		{OpMax, 3, 2, 3},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("%v.Apply(%v, %v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown op did not panic")
		}
	}()
	Op(9).Apply(1, 2)
}
