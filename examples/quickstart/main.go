// Quickstart: generate a small synthetic cosmology field, calibrate the
// rate model, plan per-partition error bounds, and compare adaptive
// compression against the static baseline — the whole pipeline of the
// paper in ~60 lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/nyx"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)

	// 1. A 64³ synthetic Nyx-like snapshot (stands in for real data).
	snap, err := nyx.Generate(nyx.Params{N: 64, Seed: 1, Redshift: 42})
	if err != nil {
		log.Fatal(err)
	}
	density, err := snap.Field(nyx.FieldBaryonDensity)
	if err != nil {
		log.Fatal(err)
	}

	// 2. An engine that cuts the field into 16³ bricks (64 partitions).
	// Config.Codec picks the compression backend from the codec registry;
	// the default is "sz", and "zfp" runs the same pipeline fixed-rate.
	eng, err := core.NewEngine(core.Config{PartitionDim: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine codec: %s\n", eng.Config().Codec)

	// 3. Calibrate the bit-rate/error-bound model once (paper Eq. 15).
	cal, err := eng.Calibrate(density)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rate model: bitrate = C_m · eb^%.3f (fit R² %.3f)\n",
		cal.Model.Exponent, cal.Model.FitR2)

	// 4. Derive the quality budget from the power-spectrum target
	// (P'(k)/P(k) within ±1 % for k < 10, 2σ confidence).
	avgEB, err := core.SpectrumBudget(density, core.BudgetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quality budget: average error bound %.4g\n", avgEB)

	// 5. Plan per-partition bounds (paper Eq. 16 + clamp).
	plan, err := eng.Plan(density, cal, core.PlanOptions{AvgEB: avgEB})
	if err != nil {
		log.Fatal(err)
	}
	var m stats.Moments
	for _, eb := range plan.EBs {
		m.Add(eb)
	}
	fmt.Printf("plan: %d partitions, eb from %.4g to %.4g\n",
		len(plan.EBs), m.Min(), m.Max())

	// 6. Compress both ways and compare.
	adaptive, err := eng.CompressAdaptive(density, plan)
	if err != nil {
		log.Fatal(err)
	}
	static, err := eng.CompressStatic(density, avgEB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static   ratio: %6.2f (%.3f bits/value)\n", static.Ratio(), static.BitRate())
	fmt.Printf("adaptive ratio: %6.2f (%.3f bits/value)  %+.1f%%\n",
		adaptive.Ratio(), adaptive.BitRate(), (adaptive.Ratio()/static.Ratio()-1)*100)

	// 7. Round-trip and verify the error bound held everywhere.
	recon, err := adaptive.Decompress()
	if err != nil {
		log.Fatal(err)
	}
	maxErr, err := stats.MaxAbsError(density.Data, recon.Data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max pointwise error %.4g (largest assigned bound %.4g)\n", maxErr, m.Max())
}
