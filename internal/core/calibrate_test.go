package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/nyx"
)

// Edge cases of the calibration inversion (SuggestStaticEB) and the halo
// mass-fault wrapper (MassFaultEstimate): previously untested error paths.

func TestSuggestStaticEBEdgeCases(t *testing.T) {
	var nilCal *Calibration
	if _, err := nilCal.SuggestStaticEB([]float64{1}, 1); err == nil {
		t.Error("nil calibration accepted")
	}
	if _, err := (&Calibration{}).SuggestStaticEB([]float64{1}, 1); err == nil {
		t.Error("calibration without model accepted")
	}

	e := engine(t, Config{PartitionDim: 16})
	cal, err := e.Calibrate(context.Background(), field(t, nyx.FieldBaryonDensity))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cal.SuggestStaticEB([]float64{1}, 0); err == nil {
		t.Error("zero target bit rate accepted")
	}
	if _, err := cal.SuggestStaticEB(nil, 2); err == nil {
		t.Error("empty feature list accepted")
	}

	// A single partition is enough to invert on.
	eb, err := cal.SuggestStaticEB([]float64{1.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if eb <= 0 || math.IsNaN(eb) {
		t.Errorf("single-partition inversion gave %v", eb)
	}

	// A zero anchor feature (empty partitions) degrades to the model's
	// MinC floor rather than failing: the bisection still converges.
	eb, err = cal.SuggestStaticEB([]float64{0, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eb <= 0 || math.IsNaN(eb) || math.IsInf(eb, 0) {
		t.Errorf("zero-anchor inversion gave %v", eb)
	}
}

func TestMassFaultEstimateEdgeCases(t *testing.T) {
	if _, err := MassFaultEstimate(88.16, 1, []int{1, 2}, []float64{0.1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := MassFaultEstimate(88.16, 0, []int{1}, []float64{0.1}); err == nil {
		t.Error("zero reference eb accepted")
	}

	// Empty partition lists are a valid degenerate case: no boundary
	// cells anywhere, so no distortion.
	est, err := MassFaultEstimate(88.16, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est != 0 {
		t.Errorf("empty estimate %v, want 0", est)
	}

	// Zero boundary cells → zero fault regardless of bounds.
	est, err = MassFaultEstimate(88.16, 1, []int{0, 0}, []float64{5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if est != 0 {
		t.Errorf("zero-cell estimate %v, want 0", est)
	}

	// Single partition: the estimate is linear in its error bound.
	e1, err := MassFaultEstimate(88.16, 1, []int{100}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := MassFaultEstimate(88.16, 1, []int{100}, []float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	if e1 <= 0 || math.Abs(e2-2*e1) > 1e-12*e2 {
		t.Errorf("linearity violated: fault(0.5)=%v, fault(1.0)=%v", e1, e2)
	}
}

func TestCalibrateSinglePartition(t *testing.T) {
	e := engine(t, Config{PartitionDim: 16})
	f := grid.NewCube(16) // exactly one partition
	for i := range f.Data {
		f.Data[i] = float32(i % 97)
	}
	if _, err := e.Calibrate(context.Background(), f); err == nil {
		t.Error("single-partition calibration accepted (cannot fit C_m vs feature)")
	}
}

func TestCalibrateRejectsBadEBGrid(t *testing.T) {
	e := engine(t, Config{PartitionDim: 16})
	f := field(t, nyx.FieldBaryonDensity)
	if _, err := e.Calibrate(context.Background(), f, CalibrationOptions{EBs: []float64{0.1, 0}}); err == nil {
		t.Error("non-positive calibration eb accepted")
	}
	if _, err := e.Calibrate(context.Background(), f, CalibrationOptions{EBs: []float64{-0.5}}); err == nil {
		t.Error("negative calibration eb accepted")
	}
}

func TestPlanFromFeaturesValidation(t *testing.T) {
	e := engine(t, Config{PartitionDim: 16})
	f := field(t, nyx.FieldBaryonDensity)
	cal, err := e.Calibrate(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	features, err := e.Features(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.PlanFromFeatures(features, nil, PlanOptions{AvgEB: 0.1}); err == nil {
		t.Error("nil calibration accepted")
	}
	if _, err := e.PlanFromFeatures(features, cal, PlanOptions{}); err == nil {
		t.Error("zero budget accepted")
	}
	plan, err := e.PlanFromFeatures(features, cal, PlanOptions{AvgEB: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := e.Plan(context.Background(), f, cal, PlanOptions{AvgEB: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan.EBs {
		if plan.EBs[i] != direct.EBs[i] {
			t.Fatalf("PlanFromFeatures diverges from Plan at partition %d", i)
		}
	}
	// Features on a non-divisible field propagates the layout error.
	if _, err := e.Features(context.Background(), grid.NewCube(30)); err == nil {
		t.Error("non-divisible field accepted by Features")
	}
}

// TestCalibratePWRELDowngradeIsRecorded: ModelScan under a non-ABS
// error-bound mode cannot be honored (the residual scan models absolute
// errors only), so Calibrate substitutes the probe ladder — and must say
// so on the Calibration instead of downgrading silently.
func TestCalibratePWRELDowngradeIsRecorded(t *testing.T) {
	e := engine(t, Config{PartitionDim: 16, Mode: codec.PWREL})
	f := field(t, nyx.FieldBaryonDensity)
	// PWREL bounds are relative and must stay below 1, so pin the grid
	// instead of using the mean-anchored default.
	pwrelEBs := []float64{1e-3, 3e-3, 1e-2, 3e-2, 0.1}
	cal, err := e.Calibrate(context.Background(), f, CalibrationOptions{Mode: ModelScan, EBs: pwrelEBs})
	if err != nil {
		t.Fatal(err)
	}
	if cal.Mode != ProbeLadder {
		t.Fatalf("PWREL ModelScan calibrated in mode %v, want probe ladder", cal.Mode)
	}
	if !cal.Downgraded {
		t.Fatal("PWREL → probe-ladder downgrade not recorded")
	}
	if cal.DowngradeReason == "" {
		t.Fatal("downgrade recorded without a reason")
	}
	if cal.FellBack {
		t.Fatal("a mode downgrade must not masquerade as a guard-band fallback")
	}

	// The honored path stays clean: ABS ModelScan reports no downgrade,
	// and an explicit PWREL ProbeLadder request is honored as asked.
	abs := engine(t, Config{PartitionDim: 16})
	cal, err = abs.Calibrate(context.Background(), f, CalibrationOptions{Mode: ModelScan})
	if err != nil {
		t.Fatal(err)
	}
	if cal.Downgraded || cal.DowngradeReason != "" {
		t.Fatalf("ABS ModelScan reports a downgrade: %+v", cal)
	}
	cal, err = e.Calibrate(context.Background(), f, CalibrationOptions{Mode: ProbeLadder, EBs: pwrelEBs})
	if err != nil {
		t.Fatal(err)
	}
	if cal.Downgraded {
		t.Fatal("an honored ProbeLadder request reports a downgrade")
	}
}
