package apierr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestDriftRecalibrationErrorChain(t *testing.T) {
	cause := errors.New("core: cannot calibrate")
	var err error = &DriftRecalibrationError{Field: "rho", Drift: 0.4, Err: cause}

	if !errors.Is(err, ErrDriftRecalibration) {
		t.Fatal("sentinel not in the unwrap chain")
	}
	if !errors.Is(err, cause) {
		t.Fatal("cause not in the unwrap chain")
	}
	var dre *DriftRecalibrationError
	if !errors.As(err, &dre) || dre.Field != "rho" || dre.Drift != 0.4 {
		t.Fatalf("errors.As: %+v", dre)
	}
	msg := err.Error()
	for _, want := range []string{"rho", "0.4", "drift recalibration failed", "cannot calibrate"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}

	// One more wrapping layer (as the pipeline adds) keeps both visible.
	wrapped := fmt.Errorf("pipeline: field rho: %w", err)
	if !errors.Is(wrapped, ErrDriftRecalibration) || !errors.As(wrapped, &dre) {
		t.Fatal("wrapping hides the typed error")
	}
}

func TestSentinelsAreDistinct(t *testing.T) {
	sentinels := []error{ErrBadConfig, ErrCorruptArchive, ErrCodecUnknown, ErrDriftRecalibration}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Fatalf("sentinel identity broken between %v and %v", a, b)
			}
		}
	}
}
