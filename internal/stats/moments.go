package stats

import (
	"errors"
	"math"
)

// Moments accumulates count, mean, and variance in a single pass using
// Welford's algorithm, plus min/max. The zero value is ready to use.
//
// The adaptive configurator extracts the mean of every partition in situ
// (Sec. 3.5 of the paper); Welford keeps that numerically stable even for
// fields like velocity whose values span ±1e8.
type Moments struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (m *Moments) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// AddSlice folds a float32 slice into the accumulator.
func (m *Moments) AddSlice(xs []float32) {
	for _, x := range xs {
		m.Add(float64(x))
	}
}

// Merge combines two accumulators (Chan et al. parallel update). It is the
// reduction operator used when partitions are processed by worker pools.
func (m *Moments) Merge(o Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	n1, n2 := float64(m.n), float64(o.n)
	d := o.mean - m.mean
	tot := n1 + n2
	m.mean += d * n2 / tot
	m.m2 += o.m2 + d*d*n1*n2/tot
	m.n += o.n
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
}

// Count returns the number of observations.
func (m *Moments) Count() int64 { return m.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the population variance (0 for fewer than 2 samples).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// StdDev returns the population standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Min returns the smallest observation (0 for an empty accumulator).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation (0 for an empty accumulator).
func (m *Moments) Max() float64 { return m.max }

// Range returns max − min.
func (m *Moments) Range() float64 { return m.max - m.min }

// ErrMismatchedLengths is returned by pairwise metrics when the two inputs
// have different lengths.
var ErrMismatchedLengths = errors.New("stats: slices have different lengths")

// MSE returns the mean squared error between two equal-length slices.
func MSE(a, b []float32) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrMismatchedLengths
	}
	if len(a) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		sum += d * d
	}
	return sum / float64(len(a)), nil
}

// PSNR returns the peak signal-to-noise ratio in dB, using the value range
// of a as the peak, matching how Foresight and the SZ literature report it.
// It returns +Inf for identical inputs.
func PSNR(a, b []float32) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	var mom Moments
	mom.AddSlice(a)
	rng := mom.Range()
	if mse == 0 {
		return math.Inf(1), nil
	}
	if rng == 0 {
		return 0, nil
	}
	return 20*math.Log10(rng) - 10*math.Log10(mse), nil
}

// MaxAbsError returns the largest pointwise |a[i]−b[i]|. The compressor
// tests use it to verify the error-bound guarantee.
func MaxAbsError(a, b []float32) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrMismatchedLengths
	}
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m, nil
}

// MaxRelError returns the largest pointwise |a[i]−b[i]| / |a[i]| over
// entries where a[i] != 0. Entries with a[i] == 0 are skipped, matching
// SZ's PW_REL semantics for strictly positive fields.
func MaxRelError(a, b []float32) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrMismatchedLengths
	}
	var m float64
	for i := range a {
		if a[i] == 0 {
			continue
		}
		d := math.Abs(float64(a[i])-float64(b[i])) / math.Abs(float64(a[i]))
		if d > m {
			m = d
		}
	}
	return m, nil
}

// MeanRelError returns the mean of |a[i]−b[i]| / |a[i]| over non-zero a.
func MeanRelError(a, b []float32) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrMismatchedLengths
	}
	var sum float64
	var n int
	for i := range a {
		if a[i] == 0 {
			continue
		}
		sum += math.Abs(float64(a[i])-float64(b[i])) / math.Abs(float64(a[i]))
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

// RMSE returns the root mean squared error between two slices.
func RMSE(a, b []float32) (float64, error) {
	mse, err := MSE(a, b)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(mse), nil
}

// MeanOf returns the arithmetic mean of a float64 slice (0 for empty).
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// SumOf returns the sum of a float64 slice.
func SumOf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
