package mpinet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apierr"
	"repro/internal/mpi"
)

// Transport is one rank's TCP connection to the coordinator. It implements
// mpi.Transport, so mpi.NewComm(t) gives protocol code the exact same
// communicator it gets from the in-process world.
type Transport struct {
	rank int
	size int
	cfg  Config
	conn net.Conn

	wmu sync.Mutex // serializes frame writes

	mu    sync.Mutex
	cond  *sync.Cond // broadcast on p2p delivery and membership changes
	epoch int
	alive map[int]bool
	seq   int
	// waiter, while non-nil, is the channel of the one in-flight
	// collective call (collectives are serial per rank by construction).
	waiter  chan waitResult
	waitSeq int
	// pendingFail holds a failure that arrived between collective calls;
	// the next call consumes it, so a rank that happened to be computing
	// when the epoch turned still aborts and retries its step like the
	// ranks that were blocked mid-collective.
	pendingFail *apierr.RankFailedError
	// terminal, once set, means the coordinator itself is gone; every
	// call fails with it forever.
	terminal error
	closed   bool
	p2pq     map[int][][]float64

	collectives atomic.Int64
	messages    atomic.Int64

	// stop ends the heartbeat ticker promptly on Close or coordinator
	// loss instead of waiting out the next tick.
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

var _ mpi.Transport = (*Transport)(nil)

type waitResult struct {
	vec []float64
	err error
}

// Join connects to the coordinator at addr as the given rank and completes
// the handshake. The returned transport is live: its read loop is running
// and (unless disabled) its heartbeat ticker keeps the membership fresh.
func Join(addr string, rank, size int, cfg Config) (*Transport, error) {
	cfg = cfg.withDefaults()
	dial := cfg.Dial
	if dial == nil {
		d := net.Dialer{Timeout: cfg.DialTimeout}
		dial = d.Dial
	}
	conn, err := dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mpinet: rank %d join %s: %w", rank, addr, err)
	}
	t := &Transport{
		rank: rank,
		size: size,
		cfg:  cfg,
		conn: conn,
		p2pq: make(map[int][][]float64),
		stop: make(chan struct{}),
	}
	t.cond = sync.NewCond(&t.mu)
	hello := &frame{kind: kindHello, from: rank, aux: uint64(size)}
	if err := t.write(hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mpinet: rank %d hello: %w", rank, err)
	}
	if cfg.DialTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(cfg.DialTimeout))
	}
	w, err := readFrame(conn)
	if err != nil || w.kind != kindWelcome {
		conn.Close()
		if err == nil {
			err = fmt.Errorf("unexpected frame kind %d", w.kind)
		}
		return nil, fmt.Errorf("mpinet: rank %d handshake: %w", rank, err)
	}
	t.epoch = w.epoch
	t.alive = make(map[int]bool, len(w.vec))
	for _, r := range w.vec {
		t.alive[int(r)] = true
	}
	t.wg.Add(1)
	go t.readLoop()
	if cfg.HeartbeatInterval > 0 {
		t.wg.Add(1)
		go t.heartbeatLoop()
	}
	return t, nil
}

// Close leaves the world cleanly (goodbye, then close) and stops the
// transport's goroutines. Collectives after Close fail.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()
	t.stopOnce.Do(func() { close(t.stop) })
	t.write(&frame{kind: kindGoodbye, from: t.rank})
	err := t.conn.Close()
	t.wg.Wait()
	return err
}

// write encodes and sends one frame under the per-message deadline.
func (t *Transport) write(f *frame) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	buf, err := appendFrame(nil, f)
	if err != nil {
		return err
	}
	if t.cfg.MessageTimeout > 0 {
		t.conn.SetWriteDeadline(time.Now().Add(t.cfg.MessageTimeout))
	}
	_, err = t.conn.Write(buf)
	return err
}

func (t *Transport) heartbeatLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
		}
		t.mu.Lock()
		epoch := t.epoch
		t.mu.Unlock()
		// A failed heartbeat write needs no handling here: the read loop
		// notices the dead conn within the heartbeat timeout.
		t.write(&frame{kind: kindHeartbeat, epoch: epoch, from: t.rank})
	}
}

// readLoop dispatches every coordinator frame. Losing the coordinator —
// read error, or silence past the heartbeat timeout — is terminal: this
// transport cannot rebuild the star's center, so every pending and future
// call fails with a typed error naming rank 0 (the coordinator's owner).
func (t *Transport) readLoop() {
	defer t.wg.Done()
	for {
		if t.cfg.HeartbeatTimeout > 0 {
			t.conn.SetReadDeadline(time.Now().Add(2 * t.cfg.HeartbeatTimeout))
		}
		f, err := readFrame(t.conn)
		if err != nil {
			t.mu.Lock()
			if !t.closed && t.terminal == nil {
				t.terminal = &apierr.RankFailedError{
					Rank:  0,
					Epoch: t.epoch,
					Err:   fmt.Errorf("mpinet: coordinator lost: %w", err),
				}
				if t.waiter != nil {
					t.waiter <- waitResult{err: t.terminal}
					t.waiter = nil
				}
				t.cond.Broadcast()
			}
			t.mu.Unlock()
			t.stopOnce.Do(func() { close(t.stop) })
			return
		}
		switch f.kind {
		case kindHeartbeat:
		case kindResult:
			t.mu.Lock()
			if t.waiter != nil && t.waitSeq == f.seq && t.epoch == f.epoch {
				t.waiter <- waitResult{vec: f.vec}
				t.waiter = nil
			}
			t.mu.Unlock()
		case kindCollErr:
			t.mu.Lock()
			if t.waiter != nil && t.waitSeq == f.seq && t.epoch == f.epoch {
				t.waiter <- waitResult{err: fmt.Errorf("mpinet: %s", f.extra)}
				t.waiter = nil
			}
			t.mu.Unlock()
		case kindRankFailed:
			t.mu.Lock()
			if f.epoch > t.epoch {
				t.epoch = f.epoch
				t.seq = 0
				failed := int(f.aux)
				delete(t.alive, failed)
				fe := &apierr.RankFailedError{
					Rank:  failed,
					Epoch: f.epoch,
					Err:   errors.New(string(f.extra)),
				}
				if t.waiter != nil {
					t.waiter <- waitResult{err: fe}
					t.waiter = nil
				} else {
					t.pendingFail = fe
				}
				// Recv calls blocked on the dead rank must re-check.
				t.cond.Broadcast()
			}
			t.mu.Unlock()
		case kindP2P:
			t.mu.Lock()
			t.p2pq[f.from] = append(t.p2pq[f.from], f.vec)
			t.cond.Broadcast()
			t.mu.Unlock()
		}
	}
}

// Rank returns this rank's index.
func (t *Transport) Rank() int { return t.rank }

// Size returns the world's starting rank count.
func (t *Transport) Size() int { return t.size }

// Epoch returns the current membership epoch.
func (t *Transport) Epoch() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// Alive lists the ranks currently believed alive, ascending.
func (t *Transport) Alive() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, 0, len(t.alive))
	for r := 0; r < t.size; r++ {
		if t.alive[r] {
			out = append(out, r)
		}
	}
	return out
}

// collective runs one blocking coordinator round trip: contribute, then
// wait for the result, a recoverable collective error, or a membership
// failure. There is no result timeout by design — a collective may
// legitimately block for as long as the slowest rank computes; the
// heartbeat failure detector is what bounds the wait when a rank is
// actually gone.
func (t *Transport) collective(kind, op, root int, vec []float64) ([]float64, error) {
	t.mu.Lock()
	if t.terminal != nil {
		err := t.terminal
		t.mu.Unlock()
		return nil, err
	}
	if t.closed {
		t.mu.Unlock()
		return nil, errors.New("mpinet: transport closed")
	}
	if pf := t.pendingFail; pf != nil {
		// A failure arrived while this rank was between collectives:
		// deliver it now so the caller aborts and retries its step in the
		// new epoch like everyone else.
		t.pendingFail = nil
		t.mu.Unlock()
		return nil, pf
	}
	if t.waiter != nil {
		t.mu.Unlock()
		return nil, errors.New("mpinet: concurrent collective calls on one rank")
	}
	ch := make(chan waitResult, 1)
	seq := t.seq
	t.seq++
	t.waiter = ch
	t.waitSeq = seq
	epoch := t.epoch
	t.mu.Unlock()

	t.collectives.Add(1)
	err := t.write(&frame{
		kind:  kindContribute,
		epoch: epoch,
		seq:   seq,
		from:  t.rank,
		aux:   packColl(kind, op, root),
		vec:   vec,
	})
	if err != nil {
		// The conn is dead; the read loop will set terminal and feed the
		// waiter. Block on the waiter rather than racing it.
	}
	res := <-ch
	return res.vec, res.err
}

// Barrier blocks until every alive rank has entered it.
func (t *Transport) Barrier() error {
	_, err := t.collective(collBarrier, 0, 0, nil)
	return err
}

// Allreduce combines one scalar per alive rank in ascending rank order.
func (t *Transport) Allreduce(v float64, op mpi.Op) (float64, error) {
	out, err := t.collective(collReduce, int(op), 0, []float64{v})
	if err != nil {
		return 0, err
	}
	if len(out) != 1 {
		return 0, fmt.Errorf("mpinet: allreduce result has %d values", len(out))
	}
	return out[0], nil
}

// AllreduceSlice element-wise reduces equal-length vectors.
func (t *Transport) AllreduceSlice(v []float64, op mpi.Op) ([]float64, error) {
	if len(v) == 0 {
		return nil, errors.New("mpinet: AllreduceSlice of empty vector")
	}
	return t.collective(collReduce, int(op), 0, v)
}

// Allgather collects one scalar per alive rank, ascending.
func (t *Transport) Allgather(v float64) ([]float64, error) {
	return t.collective(collGather, 0, 0, []float64{v})
}

// AllgatherSlice concatenates per-rank vectors in ascending rank order.
func (t *Transport) AllgatherSlice(v []float64) ([]float64, error) {
	return t.collective(collGatherV, 0, 0, v)
}

// Bcast distributes root's value to every alive rank.
func (t *Transport) Bcast(v float64, root int) (float64, error) {
	if root < 0 || root >= t.size {
		return 0, fmt.Errorf("mpinet: bcast from invalid root %d", root)
	}
	out, err := t.collective(collBcast, 0, root, []float64{v})
	if err != nil {
		return 0, err
	}
	if len(out) != 1 {
		return 0, fmt.Errorf("mpinet: bcast result has %d values", len(out))
	}
	return out[0], nil
}

// Send routes a vector to rank `to` via the coordinator. Like a buffered
// MPI send it returns once the message is on the wire; if the target is
// dead the message is dropped and the failure surfaces through collectives
// or the target's own Recv.
func (t *Transport) Send(to int, data []float64) error {
	if to < 0 || to >= t.size {
		return fmt.Errorf("mpinet: send to invalid rank %d", to)
	}
	t.mu.Lock()
	if t.terminal != nil {
		err := t.terminal
		t.mu.Unlock()
		return err
	}
	t.mu.Unlock()
	t.messages.Add(1)
	return t.write(&frame{kind: kindP2P, from: t.rank, aux: uint64(to), vec: data})
}

// Recv blocks for the next message from rank `from`. Messages already
// delivered are drained first; then a dead sender (or a lost coordinator)
// fails the call with the typed error instead of blocking forever.
func (t *Transport) Recv(from int) ([]float64, error) {
	if from < 0 || from >= t.size {
		return nil, fmt.Errorf("mpinet: recv from invalid rank %d", from)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if q := t.p2pq[from]; len(q) > 0 {
			msg := q[0]
			t.p2pq[from] = q[1:]
			return msg, nil
		}
		if t.terminal != nil {
			return nil, t.terminal
		}
		if !t.alive[from] {
			return nil, &apierr.RankFailedError{Rank: from, Epoch: t.epoch}
		}
		if t.closed {
			return nil, errors.New("mpinet: transport closed")
		}
		t.cond.Wait()
	}
}

// Stats reports this rank's collective and message counts (per-rank, not
// world-global like the in-process transport's).
func (t *Transport) Stats() (collectives, messages int64) {
	return t.collectives.Load(), t.messages.Load()
}
