package adaptive_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/adaptive"
)

// TestArchiveFacadeRoundTrip drives the whole archive surface through the
// facade alone: write a stream, serve it, negotiate a rate over HTTP, and
// verify the served bytes against the local splice.
func TestArchiveFacadeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := adaptive.NewArchiveWriter(filepath.Join(dir, "snap"+adaptive.ArchiveStreamSuffix),
		adaptive.ArchiveWriterOptions{Rate: 16, PartitionDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := adaptive.NewField(8, 8, 8)
	for i := range f.Data {
		f.Data[i] = float32(i%113) * 0.021
	}
	if err := w.WriteStep(map[string]adaptive.ArchiveFieldSpec{"rho": {Field: f}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := adaptive.NewArchiveServer(adaptive.ArchiveServerConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c, err := adaptive.NewClient(ts.URL, adaptive.WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	m, err := c.FetchManifest(ctx, "snap")
	if err != nil {
		t.Fatal(err)
	}
	if m.Steps != 1 || len(m.Fields) != 1 || m.Fields[0].MaxRate != 16 {
		t.Fatalf("manifest %+v", m)
	}

	full, err := c.FetchField(ctx, "snap", 0, "rho", adaptive.ArchiveFetchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	low, err := c.FetchField(ctx, "snap", 0, "rho", adaptive.ArchiveFetchOptions{Rate: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := adaptive.SpliceArchiveField(full.Body, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(low.Body, want) {
		t.Fatalf("served rate-4 bytes (%d) differ from local splice (%d)", len(low.Body), len(want))
	}
	// The spliced archive is a decodable field of the right geometry.
	cf, err := adaptive.ParseArchive(low.Body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cf.Decompress(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nx != f.Nx || got.Ny != f.Ny || got.Nz != f.Nz {
		t.Fatalf("decoded dims %d×%d×%d", got.Nx, got.Ny, got.Nz)
	}
}
