package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/codec"
)

// Crash recovery for archive v3 streams.
//
// A v3 stream is only "complete" once Close has appended the footer index;
// a process killed mid-run (kill -9, OOM, node failure) leaves a torn
// stream: header + N complete step blocks + possibly a partial step (or a
// partial checkpoint footer) at the tail, and OpenStream rightly rejects
// the whole file. For week-long in situ campaigns that artifact holds
// irreplaceable simulation output, so RecoverStream exists to salvage it:
// it re-derives the footer index by scanning the stream forward, validating
// each step block with the same hardened parser the normal read path uses,
// and keeps the longest prefix of fully-written steps. A torn byte is never
// trusted — a step either parses completely (every field name, every
// nested v2 archive, every codec frame) or it and everything after it is
// discarded.

// RecoveryReport describes what RecoverStream found.
type RecoveryReport struct {
	// Steps is the number of salvaged (fully validated) steps.
	Steps int
	// Clean is set when the stream's own footer was intact and the index
	// was loaded directly — no scan, nothing lost.
	Clean bool
	// TornBytes counts the bytes past the last complete step that the scan
	// discarded (a partial step block, a half-written checkpoint footer,
	// or garbage). Zero for a clean stream.
	TornBytes int64
}

// RecoverStream opens a v3 stream that may be torn. An intact stream loads
// through the normal footer path (Clean=true, O(1)); anything else is
// scanned forward from the header and the longest valid prefix of steps is
// salvaged into an in-memory index. size is the total byte length of the
// artifact as found on disk.
//
// The error is non-nil only when nothing is salvageable at all: the
// artifact is shorter than a stream header or its header bytes are not a
// v3 stream's. A valid header with zero complete steps returns an empty
// reader, not an error.
func RecoverStream(r io.ReaderAt, size int64) (*StreamReader, *RecoveryReport, error) {
	return RecoverStreamWith(r, size, codec.Default)
}

// RecoverStreamWith is RecoverStream against a specific codec registry.
func RecoverStreamWith(r io.ReaderAt, size int64, reg *codec.Registry) (*StreamReader, *RecoveryReport, error) {
	// Fast path: the footer survived (clean close, or a crash that landed
	// between a checkpoint and the next step). Trust it — it validates the
	// full index tiling.
	if sr, err := OpenStreamWith(r, size, reg); err == nil {
		return sr, &RecoveryReport{Steps: sr.Steps(), Clean: true}, nil
	}
	if size < streamHeaderBytes {
		return nil, nil, fmt.Errorf("core: %w: %d bytes is shorter than a stream header, nothing to recover", errCorrupt, size)
	}
	var hdr [streamHeaderBytes]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, nil, readAtErr("recover: stream header", err)
	}
	if string(hdr[0:4]) != streamMagic {
		return nil, nil, fmt.Errorf("core: %w: bad stream magic %q, not a v3 stream", errCorrupt, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != streamVersion {
		return nil, nil, fmt.Errorf("core: %w: unsupported stream version %d", errCorrupt, v)
	}

	var index []streamIndexEntry
	pos := int64(streamHeaderBytes)
	for pos < size {
		length, err := delimitStepBlock(r, pos, size)
		if err != nil {
			break // torn or trailing garbage: the salvaged prefix ends here
		}
		buf := make([]byte, length)
		if _, err := r.ReadAt(buf, pos); err != nil {
			break
		}
		// Full validation with the hardened parser: field-name ordering,
		// nested v2 archives, codec frames. A block that delimits but does
		// not validate is corruption, and nothing after it can be trusted
		// (its length derivation may itself be part of the damage).
		if _, err := parseStepBlock(buf, len(index), reg); err != nil {
			break
		}
		index = append(index, streamIndexEntry{Offset: uint64(pos), Length: uint64(length)})
		pos += length
	}
	return &StreamReader{r: r, index: index, reg: reg},
		&RecoveryReport{Steps: len(index), TornBytes: size - pos}, nil
}

// delimitStepBlock walks a step block's length structure starting at pos
// (field count, then per field: name length, name, payload length,
// payload) without validating contents, returning the block's total byte
// length. Every advance is bounds-checked against size, so a truncated
// block reports an error instead of running off the end.
func delimitStepBlock(r io.ReaderAt, pos, size int64) (int64, error) {
	var scratch [4]byte
	readU32 := func(at int64) (uint32, error) {
		if at+4 > size {
			return 0, io.ErrUnexpectedEOF
		}
		if _, err := r.ReadAt(scratch[:4], at); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	readU16 := func(at int64) (uint16, error) {
		if at+2 > size {
			return 0, io.ErrUnexpectedEOF
		}
		if _, err := r.ReadAt(scratch[:2], at); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint16(scratch[:2]), nil
	}
	count, err := readU32(pos)
	if err != nil {
		return 0, err
	}
	// Same honesty bound parseStepBlock enforces: each field costs at least
	// 7 bytes (name length + one name byte + payload length).
	if count == 0 || int64(count) > (size-pos)/7+1 {
		return 0, fmt.Errorf("core: implausible field count %d", count)
	}
	end := pos + 4
	for j := uint32(0); j < count; j++ {
		nameLen, err := readU16(end)
		if err != nil {
			return 0, err
		}
		if nameLen == 0 {
			return 0, fmt.Errorf("core: empty field name")
		}
		end += 2 + int64(nameLen)
		payload, err := readU32(end)
		if err != nil {
			return 0, err
		}
		end += 4 + int64(payload)
		if end > size {
			return 0, io.ErrUnexpectedEOF
		}
	}
	return end - pos, nil
}

// WriteTo serializes the reader's steps as a complete, footer-valid v3
// stream — the repair half of recovery: RecoverStream salvages a torn
// stream in memory, WriteTo persists the salvage as an artifact OpenStream
// accepts. Implements io.WriterTo.
func (sr *StreamReader) WriteTo(w io.Writer) (int64, error) {
	var written int64
	var hdr [streamHeaderBytes]byte
	copy(hdr[0:4], streamMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], streamVersion)
	n, err := w.Write(hdr[:])
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("core: rewrite stream header: %w", err)
	}
	// Steps are copied verbatim. The rebuilt index tiles from the header
	// exactly like the source's did (recovery only ever keeps a prefix),
	// so offsets carry over unchanged.
	index := make([]streamIndexEntry, 0, len(sr.index))
	off := uint64(streamHeaderBytes)
	for i, e := range sr.index {
		cn, err := io.Copy(w, io.NewSectionReader(sr.r, int64(e.Offset), int64(e.Length)))
		written += cn
		if err != nil {
			return written, fmt.Errorf("core: rewrite step %d: %w", i, err)
		}
		index = append(index, streamIndexEntry{Offset: off, Length: e.Length})
		off += e.Length
	}
	footer := appendStreamFooter(nil, index, off)
	n, err = w.Write(footer)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("core: rewrite stream footer: %w", err)
	}
	return written, nil
}
