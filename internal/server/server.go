// Package server is the networked compression service: the paper's
// adaptive in situ compressor behind an HTTP API, shared by many
// simulation clients ("tenants") at once.
//
// The design goal is bounded everything. Requests land in per-tenant
// bounded FIFO queues (full queue → typed 429, the backpressure signal); a
// single dispatcher turns the queues into shared pipeline batches by
// deficit round-robin, so a tenant streaming thousands of small fields
// cannot starve one submitting a few large ones; per-tenant token buckets
// meter cells per second; an inflight-batch semaphore bounds concurrent
// engine work, which itself fans out over the shared worker pool
// (internal/parallel) rather than spawning per-request goroutines. On top
// of the pipeline's data-drift adaptation, a load controller steps
// error-bound budgets up under pressure (queue depth, p99 latency vs SLO)
// and back down when it clears — trading rate for throughput exactly when
// the service would otherwise fall behind, the same move JetStream-style
// adaptive transports make.
//
// Transport is HTTP/1.1 and cleartext HTTP/2 (h2c) from the stdlib; h2c is
// what lets thousands of concurrent in situ ranks multiplex onto a few
// connections. Failures map the apierr taxonomy onto typed JSON error
// responses, so errors.Is-style dispatch survives the network hop as
// machine-readable codes.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apierr"
	"repro/internal/core"
	"repro/internal/pipeline"
)

// Config tunes the service. The zero value of every knob selects a sane
// default; Validate rejects negatives wrapping apierr.ErrBadConfig.
type Config struct {
	// QueueDepth bounds each tenant's admission queue (default 64). A full
	// queue refuses with a typed 429 — backpressure, not buffering.
	QueueDepth int
	// MaxTenants bounds the tenant table (default 1024): tenant state must
	// not grow without bound under hostile tenant-name churn.
	MaxTenants int
	// Quantum is the deficit-round-robin credit in cells per dispatcher
	// visit (default 2^20). Tenants with queued work receive equal quanta,
	// so throughput shares are equal in cells, not in requests.
	Quantum int64
	// TokenRate meters each tenant to this many cells per second
	// (0 = unmetered). TokenBurst is the bucket size (default 4×Quantum).
	TokenRate  float64
	TokenBurst float64
	// MaxBatchFields and MaxBatchCells bound one shared pipeline batch
	// (defaults 16 fields, 2^24 cells). Small fields from many tenants
	// coalesce up to these limits into one step.
	MaxBatchFields int
	MaxBatchCells  int64
	// MaxInflightBatches bounds concurrently executing batches (default 2:
	// one computing, one staged — each batch already saturates the worker
	// pool, so more only adds memory pressure).
	MaxInflightBatches int
	// MaxBodyBytes caps a request body (default 2^28) and MaxFieldCells a
	// decoded field (default 2^24 cells = 64 MiB of fp32).
	MaxBodyBytes  int64
	MaxFieldCells int64
	// QualityFloors caps the load controller's budget scale per tenant —
	// the contract floor: a tenant mapped here never compresses with an
	// effective BudgetScale above its cap, no matter how far the controller
	// steps the rest of the fleet up under load. Values must be ≥ 1 (1 =
	// the tenant always runs at the unscaled budget). Tenants absent from
	// the map follow the controller freely.
	QualityFloors map[string]float64
	// Adapt tunes the load-driven rate controller.
	Adapt AdaptConfig
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.MaxTenants == 0 {
		c.MaxTenants = 1024
	}
	if c.Quantum == 0 {
		c.Quantum = 1 << 20
	}
	if c.TokenBurst == 0 {
		c.TokenBurst = 4 * float64(c.Quantum)
	}
	if c.MaxBatchFields == 0 {
		c.MaxBatchFields = 16
	}
	if c.MaxBatchCells == 0 {
		c.MaxBatchCells = 1 << 24
	}
	if c.MaxInflightBatches == 0 {
		c.MaxInflightBatches = 2
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 28
	}
	if c.MaxFieldCells == 0 {
		c.MaxFieldCells = 1 << 24
	}
	if c.Adapt.HighQueue == 0 {
		c.Adapt.HighQueue = c.QueueDepth
	}
	c.Adapt = c.Adapt.withDefaults()
	return c
}

// Validate rejects nonsensical knobs wrapping apierr.ErrBadConfig.
func (c Config) Validate() error {
	bad := func(what string, v any) error {
		return fmt.Errorf("server: %w: %s must not be negative (got %v)", apierr.ErrBadConfig, what, v)
	}
	switch {
	case c.QueueDepth < 0:
		return bad("QueueDepth", c.QueueDepth)
	case c.MaxTenants < 0:
		return bad("MaxTenants", c.MaxTenants)
	case c.Quantum < 0:
		return bad("Quantum", c.Quantum)
	case c.TokenRate < 0:
		return bad("TokenRate", c.TokenRate)
	case c.TokenBurst < 0:
		return bad("TokenBurst", c.TokenBurst)
	case c.MaxBatchFields < 0:
		return bad("MaxBatchFields", c.MaxBatchFields)
	case c.MaxBatchCells < 0:
		return bad("MaxBatchCells", c.MaxBatchCells)
	case c.MaxInflightBatches < 0:
		return bad("MaxInflightBatches", c.MaxInflightBatches)
	case c.MaxBodyBytes < 0:
		return bad("MaxBodyBytes", c.MaxBodyBytes)
	case c.MaxFieldCells < 0:
		return bad("MaxFieldCells", c.MaxFieldCells)
	}
	for tenant, cap := range c.QualityFloors {
		if cap < 1 {
			return fmt.Errorf("server: %w: quality floor for tenant %q must be ≥ 1 (got %g): 1 is the unscaled budget, the floor caps how far above it load stepping may go", apierr.ErrBadConfig, tenant, cap)
		}
	}
	return nil
}

// metrics are the service counters, all atomics so the stats endpoint
// never contends with the hot path.
type metrics struct {
	accepted, served, failed, rejected, canceled atomic.Uint64
	batches, cells, bytesOut                     atomic.Uint64
	panics, archiveErrs                          atomic.Uint64
}

// Server multiplexes compression requests onto one pipeline driver. Build
// with New, expose with Handler (typically via NewHTTPServer for h2c),
// stop with Close.
type Server struct {
	cfg     Config
	drv     *pipeline.Driver
	calOpts core.CalibrationOptions
	lc      *loadController
	now     func() time.Time
	start   time.Time

	baseCtx  context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	inflight chan struct{}
	wake     chan struct{}
	draining atomic.Bool

	archMu sync.Mutex
	arch   *core.StreamWriter

	mu      sync.Mutex
	tenants map[string]*tenantQ
	order   []*tenantQ
	rrPos   int
	queued  int
	closed  bool

	m metrics
}

// New builds a server over an existing pipeline driver (whose engine,
// worker pool, and per-tenant-field calibration state it shares) and
// starts its dispatcher. cal tunes the /v1/calibrate endpoint's sampling.
func New(drv *pipeline.Driver, cal core.CalibrationOptions, cfg Config) (*Server, error) {
	s, err := newServer(drv, cal, cfg, time.Now)
	if err != nil {
		return nil, err
	}
	s.Start()
	return s, nil
}

// newServer builds without starting the dispatcher — tests drive
// collectBatch by hand against an injected clock.
func newServer(drv *pipeline.Driver, cal core.CalibrationOptions, cfg Config, now func() time.Time) (*Server, error) {
	if drv == nil {
		return nil, fmt.Errorf("server: %w: nil pipeline driver", apierr.ErrBadConfig)
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:      cfg,
		drv:      drv,
		calOpts:  cal,
		lc:       newLoadController(cfg.Adapt, now),
		now:      now,
		start:    now(),
		baseCtx:  ctx,
		cancel:   cancel,
		inflight: make(chan struct{}, cfg.MaxInflightBatches),
		wake:     make(chan struct{}, 1),
		tenants:  make(map[string]*tenantQ),
	}, nil
}

// Start launches the dispatcher. New calls it; only tests built on
// newServer call it directly.
func (s *Server) Start() {
	s.wg.Add(1)
	go s.dispatch()
}

// depth returns the total queued-job count.
func (s *Server) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

func (s *Server) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// Close stops admission, fails every queued request with the overload
// error, waits for in-flight batches, and returns. Idempotent.
func (s *Server) Close() error {
	s.markClosed()
	s.cancel()
	s.wg.Wait()
	return nil
}

// BeginDrain puts the server in lame-duck mode: every new request is
// refused with a typed 503 (apierr.ErrDraining, never started, safe to
// retry elsewhere) while queued and in-flight work keeps executing to
// completion. Idempotent; Close still performs the final stop.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether the server is in lame-duck mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain enters lame-duck mode and blocks until every admitted request has
// been answered (served, failed, or canceled) or ctx expires — the SIGTERM
// half of graceful shutdown: Drain, then Close, then exit 0.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.outstanding() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain interrupted with %d requests outstanding: %w", s.outstanding(), ctx.Err())
		case <-tick.C:
		}
	}
}

// outstanding counts admitted-but-unanswered requests. Every admission
// increments accepted; every answer lands in exactly one of served,
// failed, or canceled.
func (s *Server) outstanding() uint64 {
	return s.m.accepted.Load() - s.m.served.Load() - s.m.failed.Load() - s.m.canceled.Load()
}

// AttachArchive directs every successfully compressed batch into a v3
// stream writer as one step (field names are the tenant-qualified step
// keys). The caller owns the writer's lifecycle: attach before serving
// traffic, Close the server, then Close the writer for the footer — or
// crash and let core.RecoverStream salvage the checkpointed prefix, which
// is the chaos suite's whole scenario. Pass nil to detach.
func (s *Server) AttachArchive(sw *core.StreamWriter) {
	s.archMu.Lock()
	s.arch = sw
	s.archMu.Unlock()
}

// archiveStep appends one batch's compressed fields to the attached
// archive, if any. Serialized by archMu: steps from concurrent batches
// interleave whole, never torn. Write failures are counted but do not fail
// the requests — the archive is an observer of the batch, not a stage in
// it.
func (s *Server) archiveStep(fields map[string]*core.CompressedField) {
	s.archMu.Lock()
	defer s.archMu.Unlock()
	if s.arch == nil || len(fields) == 0 {
		return
	}
	if err := s.arch.WriteStep(fields); err != nil {
		s.m.archiveErrs.Add(1)
	}
}

// Stats is the service snapshot the /v1/stats endpoint serves.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Accepted      uint64  `json:"accepted"`
	Served        uint64  `json:"served"`
	Failed        uint64  `json:"failed"`
	Rejected      uint64  `json:"rejected"`
	Canceled      uint64  `json:"canceled"`
	Queued        int     `json:"queued"`
	Tenants       int     `json:"tenants"`
	Batches       uint64  `json:"batches"`
	Level         int     `json:"level"`
	BudgetScale   float64 `json:"budget_scale"`
	StepUps       uint64  `json:"step_ups"`
	StepDowns     uint64  `json:"step_downs"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	Cells         uint64  `json:"cells"`
	BytesOut      uint64  `json:"bytes_out"`
	// Draining is set while the server is in lame-duck mode.
	Draining bool `json:"draining"`
	// Panics counts batch executions that recovered from a panic; the
	// panicking requests failed with typed 500s, their batch-mates did not.
	Panics uint64 `json:"panics"`
	// ArchiveErrs counts attached-archive step writes that failed.
	ArchiveErrs uint64 `json:"archive_errs"`
}

// Stats snapshots the service counters and controller state.
func (s *Server) Stats() Stats {
	level, scale, p50, p99, ups, downs := s.lc.snapshot()
	s.mu.Lock()
	queued, tenants := s.queued, len(s.tenants)
	s.mu.Unlock()
	return Stats{
		UptimeSeconds: s.now().Sub(s.start).Seconds(),
		Accepted:      s.m.accepted.Load(),
		Served:        s.m.served.Load(),
		Failed:        s.m.failed.Load(),
		Rejected:      s.m.rejected.Load(),
		Canceled:      s.m.canceled.Load(),
		Queued:        queued,
		Tenants:       tenants,
		Batches:       s.m.batches.Load(),
		Level:         level,
		BudgetScale:   scale,
		StepUps:       ups,
		StepDowns:     downs,
		LatencyP50Ms:  float64(p50) / float64(time.Millisecond),
		LatencyP99Ms:  float64(p99) / float64(time.Millisecond),
		Cells:         s.m.cells.Load(),
		BytesOut:      s.m.bytesOut.Load(),
		Draining:      s.draining.Load(),
		Panics:        s.m.panics.Load(),
		ArchiveErrs:   s.m.archiveErrs.Load(),
	}
}

// Handler returns the service's HTTP API:
//
//	POST /v1/compress/{field}   raw field in  → archive v2 out
//	POST /v1/decompress         archive v2 in → raw field out
//	POST /v1/calibrate/{field}  raw field in  → calibration JSON out
//	GET  /v1/stats              service counters and controller state
//	GET  /healthz               liveness
//
// Tenancy comes from the X-Tenant header (default "default"). A `timeout`
// query parameter (Go duration) bounds the request server-side on top of
// the client's own disconnect/cancellation.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compress/{field}", func(w http.ResponseWriter, r *http.Request) {
		s.handleField(w, r, jobCompress)
	})
	mux.HandleFunc("POST /v1/calibrate/{field}", func(w http.ResponseWriter, r *http.Request) {
		s.handleField(w, r, jobCalibrate)
	})
	mux.HandleFunc("POST /v1/decompress", s.handleDecompress)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// A draining server reports unhealthy so load balancers stop
		// routing to it while in-flight work finishes.
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// NewHTTPServer wraps a handler in an http.Server speaking HTTP/1.1 and
// cleartext HTTP/2 (h2c) on addr — stdlib-only, no TLS, which is what an
// on-cluster sidecar service wants: h2c gives each simulation rank stream
// multiplexing over one TCP connection.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	p := new(http.Protocols)
	p.SetHTTP1(true)
	p.SetUnencryptedHTTP2(true)
	return &http.Server{Addr: addr, Handler: h, Protocols: p}
}

// NewH2CTransport returns an http.Transport that speaks h2c to
// NewHTTPServer instances — the client half used by the load generator and
// tests.
func NewH2CTransport() *http.Transport {
	p := new(http.Protocols)
	p.SetUnencryptedHTTP2(true)
	return &http.Transport{Protocols: p}
}

// nameOK validates tenant and field names: short, printable, and free of
// the stepKey separator.
func nameOK(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			return false
		}
	}
	return true
}

// requestSetup pulls the common request plumbing: tenant, body, and the
// effective context. The returned cancel must be called by the handler.
func (s *Server) requestSetup(w http.ResponseWriter, r *http.Request) (tenant string, body []byte, ctx context.Context, cancel context.CancelFunc, err error) {
	tenant = r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	if !nameOK(tenant) {
		return "", nil, nil, nil, fmt.Errorf("server: %w: invalid tenant name %q", apierr.ErrBadConfig, tenant)
	}
	body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return "", nil, nil, nil, fmt.Errorf("server: reading request body: %w", err)
	}
	ctx, cancel = r.Context(), func() {}
	if t := r.URL.Query().Get("timeout"); t != "" {
		d, perr := time.ParseDuration(t)
		if perr != nil || d <= 0 {
			return "", nil, nil, nil, fmt.Errorf("server: %w: bad timeout %q", apierr.ErrBadConfig, t)
		}
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	return tenant, body, ctx, cancel, nil
}

// handleField serves compress and calibrate: both take a raw field in.
func (s *Server) handleField(w http.ResponseWriter, r *http.Request, kind jobKind) {
	field := r.PathValue("field")
	if !nameOK(field) {
		WriteError(w, fmt.Errorf("server: %w: invalid field name %q", apierr.ErrBadConfig, field))
		return
	}
	tenant, body, ctx, cancel, err := s.requestSetup(w, r)
	if err != nil {
		WriteError(w, err)
		return
	}
	defer cancel()
	f, err := DecodeField(body, s.cfg.MaxFieldCells)
	if err != nil {
		WriteError(w, err)
		return
	}
	j := &job{
		kind: kind, tenant: tenant, field: field, data: f,
		cost: int64(f.Len()), ctx: ctx, queued: s.now(),
		done: make(chan jobResult, 1),
	}
	res, err := s.await(j)
	if err != nil {
		WriteError(w, err)
		return
	}
	switch kind {
	case jobCompress:
		s.writeRateHeaders(w, res)
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(res.archive)
	case jobCalibrate:
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(calibrationJSON(res.cal))
	}
}

// handleDecompress serves archive v2 → raw field.
func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	tenant, body, ctx, cancel, err := s.requestSetup(w, r)
	if err != nil {
		WriteError(w, err)
		return
	}
	defer cancel()
	// Parse at admission: it validates headers without decompressing, the
	// cell count is the job's queueing cost, and a corrupt archive never
	// occupies a queue slot.
	cf, err := core.ParseCompressedField(body)
	if err != nil {
		WriteError(w, err)
		return
	}
	if n := int64(cf.N()); n > s.cfg.MaxFieldCells {
		WriteError(w, fmt.Errorf("server: %w: archive holds %d cells, limit %d", apierr.ErrBadConfig, n, s.cfg.MaxFieldCells))
		return
	}
	j := &job{
		kind: jobDecompress, tenant: tenant, field: "(decompress)", cf: cf,
		cost: int64(cf.N()), ctx: ctx, queued: s.now(),
		done: make(chan jobResult, 1),
	}
	res, err := s.await(j)
	if err != nil {
		WriteError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(EncodeField(res.field))
}

// await admits a job and blocks until its result or its context's death —
// whichever first. An abandoned job is dropped by the dispatcher when it
// reaches the queue head (or executed harmlessly if already batched; the
// buffered done channel absorbs the unread result).
func (s *Server) await(j *job) (jobResult, error) {
	if err := s.admit(j); err != nil {
		return jobResult{}, err
	}
	select {
	case res := <-j.done:
		if res.err != nil {
			return jobResult{}, res.err
		}
		return res, nil
	case <-j.ctx.Done():
		return jobResult{}, fmt.Errorf("server: request %w", j.ctx.Err())
	}
}

// writeRateHeaders reports the operating point a compression ran at — how
// clients observe load-driven rate stepping.
func (s *Server) writeRateHeaders(w http.ResponseWriter, res jobResult) {
	h := w.Header()
	h.Set("X-Rate-Level", strconv.Itoa(res.level))
	h.Set("X-Budget-Scale", strconv.FormatFloat(res.scale, 'g', -1, 64))
	if res.stats != nil {
		h.Set("X-Bit-Rate", strconv.FormatFloat(res.stats.BitRate, 'g', 6, 64))
		h.Set("X-Ratio", strconv.FormatFloat(res.stats.Ratio, 'g', 6, 64))
		if res.stats.Recalibrated {
			h.Set("X-Recalibrated", "1")
		}
	}
}

// calibrationView is the /v1/calibrate response: the parts of a
// core.Calibration a remote client can use, including the downgrade
// disclosure (satellite of the PWREL→probe-ladder fix: a client asking for
// the cheap scan under PWREL must see it was given the ladder, and why).
type calibrationView struct {
	Mode            string    `json:"mode"`
	Downgraded      bool      `json:"downgraded"`
	DowngradeReason string    `json:"downgrade_reason,omitempty"`
	FellBack        bool      `json:"fell_back"`
	Residual        float64   `json:"residual"`
	Samples         int       `json:"samples"`
	EBs             []float64 `json:"ebs"`
}

func calibrationJSON(cal *core.Calibration) calibrationView {
	return calibrationView{
		Mode:            cal.Mode.String(),
		Downgraded:      cal.Downgraded,
		DowngradeReason: cal.DowngradeReason,
		FellBack:        cal.FellBack,
		Residual:        cal.Residual,
		Samples:         len(cal.PartitionIDs),
		EBs:             cal.EBs,
	}
}

// errorBody is the typed error envelope every non-2xx response carries.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// statusCanceled is nginx's non-standard 499 "client closed request" —
// the response is usually unobservable (the client left), but the code
// keeps access logs honest about who ended the exchange.
const statusCanceled = 499

// statusOf maps the error taxonomy to HTTP statuses and stable
// machine-readable codes — the network form of errors.Is.
func statusOf(err error) (int, string) {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge, "body_too_large"
	case errors.Is(err, apierr.ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, apierr.ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, apierr.ErrCorruptArchive):
		return http.StatusUnprocessableEntity, "corrupt_archive"
	case errors.Is(err, apierr.ErrCodecUnknown):
		return http.StatusBadRequest, "codec_unknown"
	case errors.Is(err, apierr.ErrDriftRecalibration):
		return http.StatusInternalServerError, "drift_recalibration"
	case errors.Is(err, apierr.ErrBadConfig):
		return http.StatusBadRequest, "bad_config"
	case errors.Is(err, apierr.ErrNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return statusCanceled, "canceled"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// WriteError renders a taxonomy error as the service's JSON error
// envelope with the matching HTTP status and stable machine code —
// shared with sibling services (the archive read server) so every
// endpoint in the fleet speaks one error wire format and
// ErrorFromResponse reverses all of them.
func WriteError(w http.ResponseWriter, err error) {
	status, code := statusOf(err)
	var body errorBody
	body.Error.Code = code
	body.Error.Message = err.Error()
	w.Header().Set("Content-Type", "application/json")
	// Never-started refusals advertise when retrying is worthwhile. A 429
	// carries the refusing queue's own backlog estimate when it made one
	// (OverloadError.RetryAfterSeconds); a draining 503 says "now, but
	// elsewhere" — the shortest honest hint.
	if status == http.StatusTooManyRequests || code == "draining" {
		secs := 1
		var oe *apierr.OverloadError
		if errors.As(err, &oe) && oe.RetryAfterSeconds > 0 {
			secs = oe.RetryAfterSeconds
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// ErrorFromResponse reconstructs the taxonomy sentinel from a typed error
// response, so facade-level clients keep errors.Is across the network.
// Returns nil when the response is not an error envelope the service
// produced.
func ErrorFromResponse(status int, body []byte) error {
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code == "" {
		return nil
	}
	sentinel := map[string]error{
		"overloaded":          apierr.ErrOverloaded,
		"draining":            apierr.ErrDraining,
		"corrupt_archive":     apierr.ErrCorruptArchive,
		"codec_unknown":       apierr.ErrCodecUnknown,
		"bad_config":          apierr.ErrBadConfig,
		"not_found":           apierr.ErrNotFound,
		"drift_recalibration": apierr.ErrDriftRecalibration,
		"deadline_exceeded":   context.DeadlineExceeded,
		"canceled":            context.Canceled,
	}[eb.Error.Code]
	msg := strings.TrimSpace(eb.Error.Message)
	if sentinel == nil {
		return fmt.Errorf("server: HTTP %d: %s", status, msg)
	}
	return fmt.Errorf("server: HTTP %d: %w (%s)", status, sentinel, msg)
}
