package huffman

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// The coder is canonical: only code lengths are stored in the stream, and
// both sides derive identical codes by sorting (length, symbol). Symbols are
// non-negative ints (SZ quantization indices after offsetting by the
// quantization radius).
//
// The hot paths are table-driven. The SZ alphabet is small and contiguous
// ([0, 2·radius) quantization codes plus a handful of RLE run tokens), so
// the encoder counts frequencies and looks codes up in dense slices indexed
// by symbol, and the decoder resolves codes ≤ lutBits bits with a single
// peek into a first-level LUT, falling back to the canonical
// firstCode/count scan only for long codes. Both sides move the bitstream
// through a 64-bit accumulator instead of per-bit calls.

// maxCodeLen bounds code lengths so a code always fits in one accumulator
// refill with room to spare. If a frequency distribution would produce
// deeper codes, frequencies are flattened and the tree rebuilt.
const maxCodeLen = 48

// lutBits is the first-level decoder LUT width: codes up to this many bits
// decode with one table peek. 12 bits covers every symbol of a typical SZ
// stream (the quantization histogram is sharply peaked) at a 4096-entry
// table that is cheap to rebuild per partition.
const lutBits = 12

// denseLimit bounds the alphabet size for which the encoder uses dense
// slice-indexed frequency/code tables. Symbols above the limit (possible
// only through hostile or exotic radius settings — SZ's default alphabet
// tops out near 2¹⁶) fall back to map-based tables so a single huge symbol
// cannot force a giant allocation.
const denseLimit = 1 << 22

type code struct {
	bits uint64
	n    uint8
}

// symFreq is one present symbol and its frequency, in ascending symbol
// order. The Huffman heap and the canonical code assignment both run over
// this list, so the tie-breaking (and therefore the emitted bit stream) is
// deterministic.
type symFreq struct {
	sym  int
	freq int64
}

// heapNode is one node of the Huffman tree, stored in a flat arena. The
// arena index doubles as the creation-order tie-break: leaves are created
// in ascending symbol order, internal nodes strictly afterwards, exactly
// matching the classic heap construction this replaces.
type heapNode struct {
	freq        int64
	left, right int32 // arena indices, -1 for leaves
	pair        int32 // index into the symFreq list (leaves only)
}

// Scratch holds the reusable working state of the encoder: frequency and
// code tables, the tree arena, and the header buffer. The hot in situ path
// Huffman-codes thousands of equally sized partitions, so reusing one
// Scratch per worker removes the per-call table allocations. A Scratch must
// not be used concurrently; the zero value is ready to use.
type Scratch struct {
	freq  []int64   // dense frequency table, indexed by symbol
	codes []code    // dense code table, indexed by symbol
	pairs []symFreq // present symbols, ascending
	work  []int64   // flattened frequencies for boundedCodeLengths retries
	lens  []uint8   // per-pair code lengths
	nodes []heapNode
	heap  []int32
	hdr   []byte
	// Decoder state (DecompressWith).
	entries []symLen
	dec     decodeTable
	decOut  []int
}

func (s *Scratch) pairBuf(n int) []symFreq {
	if cap(s.pairs) < n {
		s.pairs = make([]symFreq, 0, n)
	}
	return s.pairs[:0]
}

// codeLengthsInto runs the Huffman algorithm over the present symbols and
// writes each pair's code length into lens. freqs[i] is the (possibly
// flattened) frequency of pairs[i].
func (s *Scratch) codeLengthsInto(lens []uint8, freqs []int64) {
	n := len(freqs)
	if n == 1 {
		lens[0] = 1
		return
	}
	if cap(s.nodes) < 2*n-1 {
		s.nodes = make([]heapNode, 0, 2*n-1)
	}
	nodes := s.nodes[:0]
	if cap(s.heap) < n {
		s.heap = make([]int32, 0, n)
	}
	h := s.heap[:0]
	for i := 0; i < n; i++ {
		nodes = append(nodes, heapNode{freq: freqs[i], left: -1, right: -1, pair: int32(i)})
		h = append(h, int32(i))
	}
	// nodes are appended in increasing (freq-insertion) order, so the arena
	// index is the deterministic tie-break and the initial heap slice is
	// already a valid min-heap ordering seed; establish the heap property.
	less := func(a, b int32) bool {
		if nodes[a].freq != nodes[b].freq {
			return nodes[a].freq < nodes[b].freq
		}
		return a < b
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && less(h[l], h[m]) {
				m = l
			}
			if r < len(h) && less(h[r], h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !less(h[i], h[p]) {
				return
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	pop := func() int32 {
		top := h[0]
		h[0] = h[len(h)-1]
		h = h[:len(h)-1]
		siftDown(0)
		return top
	}
	for len(h) > 1 {
		a := pop()
		b := pop()
		nodes = append(nodes, heapNode{freq: nodes[a].freq + nodes[b].freq, left: a, right: b, pair: -1})
		h = append(h, int32(len(nodes)-1))
		siftUp(len(h) - 1)
	}
	root := h[0]
	s.nodes, s.heap = nodes, h[:0]

	// Assign depths iteratively (the pre-bounding tree can be as deep as
	// the alphabet). Depth fits in int32: trees are at most n deep.
	type frame struct {
		node  int32
		depth int32
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{root, 0})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &nodes[f.node]
		if nd.left < 0 {
			d := f.depth
			if d == 0 {
				d = 1
			}
			if d > maxCodeLen {
				// Caller re-runs with flattened frequencies; the exact
				// value only needs to exceed the bound.
				lens[nd.pair] = maxCodeLen + 1
			} else {
				lens[nd.pair] = uint8(d)
			}
			continue
		}
		stack = append(stack, frame{nd.left, f.depth + 1}, frame{nd.right, f.depth + 1})
	}
}

// boundedCodeLengthsInto retries with flattened frequencies until no code
// exceeds maxCodeLen. Flattening divides frequencies by 2 (floor, min 1),
// which strictly reduces the achievable depth and terminates.
func (s *Scratch) boundedCodeLengthsInto(lens []uint8, pairs []symFreq) {
	if cap(s.work) < len(pairs) {
		s.work = make([]int64, len(pairs))
	}
	work := s.work[:len(pairs)]
	for i, p := range pairs {
		work[i] = p.freq
	}
	for {
		s.codeLengthsInto(lens, work)
		ok := true
		for _, l := range lens {
			if l > maxCodeLen {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		for i, c := range work {
			nc := c / 2
			if nc < 1 {
				nc = 1
			}
			work[i] = nc
		}
	}
}

// canonicalAssign computes the canonical code of each pair from its length:
// symbols sorted by (length, symbol) receive consecutive codes. pairs are
// already in ascending symbol order, so a counting pass over lengths
// followed by one in-order sweep reproduces the sorted assignment without
// sorting.
func canonicalAssign(lens []uint8, assign func(pair int, c code)) {
	var lenCount [maxCodeLen + 2]int64
	for _, l := range lens {
		lenCount[l]++
	}
	var nextCode [maxCodeLen + 1]uint64
	var c uint64
	for l := 1; l <= maxCodeLen; l++ {
		c = (c + uint64(lenCount[l-1])) << 1
		nextCode[l] = c
	}
	for i, l := range lens {
		assign(i, code{bits: nextCode[l], n: l})
		nextCode[l]++
	}
}

// Errors returned by the coder.
var (
	ErrEmptyInput   = errors.New("huffman: empty symbol stream")
	ErrCorruptTable = errors.New("huffman: corrupt code table")
	ErrCorruptData  = errors.New("huffman: corrupt payload")
)

// Compress Huffman-codes a stream of non-negative symbols into a
// self-describing byte slice (code table + payload).
//
// Stream layout (all varints are unsigned LEB128 via encoding/binary):
//
//	uvarint  symbolCount (number of coded symbols)
//	uvarint  distinct    (number of table entries)
//	entries: uvarint symbol, byte length   (sorted by symbol)
//	payload: canonical-Huffman bits, zero-padded to a byte
func Compress(symbols []int) ([]byte, error) {
	return CompressWith(symbols, nil)
}

// CompressWith is Compress with caller-owned scratch tables; a nil scratch
// allocates fresh working state. Only the returned stream outlives the
// call, so one Scratch per worker makes the per-partition entropy stage
// allocation-flat.
func CompressWith(symbols []int, s *Scratch) ([]byte, error) {
	if len(symbols) == 0 {
		return nil, ErrEmptyInput
	}
	if s == nil {
		s = &Scratch{}
	}

	// Pass 1: range check + maxSymbol, so the frequency table can be a
	// dense slice instead of a map.
	maxSym := 0
	for _, v := range symbols {
		if v < 0 {
			return nil, fmt.Errorf("huffman: negative symbol %d", v)
		}
		if v > maxSym {
			maxSym = v
		}
	}

	var pairs []symFreq
	dense := maxSym < denseLimit
	if dense {
		// The frequency table is kept all-zero between calls (the pair
		// scan below re-zeroes exactly the entries this call touched), so
		// reuse needs no O(alphabet) clear.
		if cap(s.freq) < maxSym+1 {
			s.freq = make([]int64, maxSym+1)
		}
		freq := s.freq[:maxSym+1]
		for _, v := range symbols {
			freq[v]++
		}
		pairs = s.pairBuf(maxSym + 1)
		for sym, f := range freq {
			if f > 0 {
				pairs = append(pairs, symFreq{sym: sym, freq: f})
				freq[sym] = 0
			}
		}
	} else {
		// Cold fallback for absurd alphabets (hostile radius settings):
		// identical stream, map-backed tables.
		m := make(map[int]int64, 1024)
		for _, v := range symbols {
			m[v]++
		}
		pairs = s.pairBuf(len(m))
		for sym, f := range m {
			pairs = append(pairs, symFreq{sym: sym, freq: f})
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].sym < pairs[j].sym })
	}
	s.pairs = pairs

	if cap(s.lens) < len(pairs) {
		s.lens = make([]uint8, len(pairs))
	}
	lens := s.lens[:len(pairs)]
	s.boundedCodeLengthsInto(lens, pairs)

	// Header + exact payload size in one output allocation: the payload
	// bit count is Σ freq·len, known before a single bit is written.
	hdr := s.hdr[:0]
	hdr = binary.AppendUvarint(hdr, uint64(len(symbols)))
	hdr = binary.AppendUvarint(hdr, uint64(len(pairs)))
	var totalBits uint64
	for i, p := range pairs {
		hdr = binary.AppendUvarint(hdr, uint64(p.sym))
		hdr = append(hdr, lens[i])
		totalBits += uint64(p.freq) * uint64(lens[i])
	}
	s.hdr = hdr
	out := make([]byte, len(hdr)+int((totalBits+7)/8))
	copy(out, hdr)
	pay := out[len(hdr):]

	// Payload: canonical-Huffman bits MSB-first through a 64-bit
	// accumulator. Codes are ≤ maxCodeLen (48) bits and at most 7 bits are
	// pending between symbols, so the accumulator never overflows. The
	// dense loop is the hot path: one slice index per symbol.
	var acc uint64
	var nacc uint
	pos := 0
	if dense {
		if cap(s.codes) < maxSym+1 {
			s.codes = make([]code, maxSym+1)
		}
		codes := s.codes[:maxSym+1]
		canonicalAssign(lens, func(i int, c code) { codes[pairs[i].sym] = c })
		for _, sym := range symbols {
			c := codes[sym]
			acc = acc<<c.n | c.bits
			nacc += uint(c.n)
			for nacc >= 8 {
				nacc -= 8
				pay[pos] = byte(acc >> nacc)
				pos++
			}
		}
	} else {
		codes := make(map[int]code, len(pairs))
		canonicalAssign(lens, func(i int, c code) { codes[pairs[i].sym] = c })
		for _, sym := range symbols {
			c := codes[sym]
			acc = acc<<c.n | c.bits
			nacc += uint(c.n)
			for nacc >= 8 {
				nacc -= 8
				pay[pos] = byte(acc >> nacc)
				pos++
			}
		}
	}
	if nacc > 0 {
		pay[pos] = byte(acc << (8 - nacc))
	}
	return out, nil
}

// symLen is one parsed code-table entry.
type symLen struct {
	sym int
	n   uint8
}

// decodeTable is the canonical decoding structure: a first-level LUT that
// resolves codes ≤ peek bits in one lookup, plus the per-length
// firstCode/firstIdx/count arrays for the long-code fallback.
type decodeTable struct {
	maxLen    int
	peek      uint
	firstCode [maxCodeLen + 1]uint64
	firstIdx  [maxCodeLen + 1]int32
	count     [maxCodeLen + 1]int32
	symbols   []int // sorted by (length, symbol)
	// lut entries pack (index into symbols)<<6 | length; 0 means "longer
	// than peek bits" (length 0 is never valid).
	lut []uint32
}

// build (re)initialises the table from parsed entries, reusing the symbol
// and LUT storage of a previous build.
func (t *decodeTable) build(entries []symLen) error {
	// Sort by (length, symbol); duplicate symbols make the table ambiguous.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n < entries[j].n
		}
		return entries[i].sym < entries[j].sym
	})
	t.maxLen = 0
	clear(t.count[:])
	if cap(t.symbols) < len(entries) {
		t.symbols = make([]int, len(entries))
	}
	t.symbols = t.symbols[:len(entries)]
	var c uint64
	prevLen := 0
	for i, e := range entries {
		n := int(e.n)
		if n <= 0 || n > maxCodeLen {
			return ErrCorruptTable
		}
		c <<= uint(n - prevLen)
		if t.count[n] == 0 {
			t.firstCode[n] = c
			t.firstIdx[n] = int32(i)
		}
		t.count[n]++
		t.symbols[i] = e.sym
		if n > t.maxLen {
			t.maxLen = n
		}
		c++
		prevLen = n
		// Kraft check: code must fit in n bits.
		if c > (1 << uint(n)) {
			return ErrCorruptTable
		}
	}
	t.peek = uint(t.maxLen)
	if t.peek > lutBits {
		t.peek = lutBits
	}
	if cap(t.lut) < 1<<t.peek {
		t.lut = make([]uint32, 1<<t.peek)
	} else {
		t.lut = t.lut[:1<<t.peek]
		clear(t.lut)
	}
	c = 0
	prevLen = 0
	for i, e := range entries {
		n := int(e.n)
		c <<= uint(n - prevLen)
		if uint(n) <= t.peek {
			base := c << (t.peek - uint(n))
			span := uint64(1) << (t.peek - uint(n))
			entry := uint32(i)<<6 | uint32(n)
			fill := t.lut[base : base+span]
			for j := range fill {
				fill[j] = entry
			}
		}
		c++
		prevLen = n
	}
	return nil
}

// Decompress reverses Compress. The decoder reads the bitstream through a
// 64-bit accumulator and resolves codes ≤ lutBits bits with one first-level
// LUT peek; longer codes fall back to the canonical per-length scan.
func Decompress(data []byte) ([]int, error) {
	return decompress(data, nil)
}

// DecompressWith is Decompress with caller-owned scratch state: the decode
// table, entry list, and the returned token slice all live in s, so the
// result is only valid until the scratch's next decode. The hot
// per-partition decode path uses this to run without per-call table
// allocations.
func DecompressWith(data []byte, s *Scratch) ([]int, error) {
	if s == nil {
		s = &Scratch{}
	}
	return decompress(data, s)
}

func decompress(data []byte, s *Scratch) ([]int, error) {
	symCount, n1 := binary.Uvarint(data)
	if n1 <= 0 {
		return nil, ErrCorruptTable
	}
	data = data[n1:]
	distinct, n2 := binary.Uvarint(data)
	if n2 <= 0 || distinct == 0 {
		return nil, ErrCorruptTable
	}
	data = data[n2:]
	// Each entry costs ≥ 2 bytes, so a claimed count beyond that is
	// corrupt before any parsing work happens.
	if distinct > uint64(len(data))/2 {
		return nil, ErrCorruptTable
	}
	var entries []symLen
	if s != nil && cap(s.entries) >= int(distinct) {
		entries = s.entries[:0]
	} else {
		entries = make([]symLen, 0, distinct)
	}
	sorted := true
	prevSym := -1
	for i := uint64(0); i < distinct; i++ {
		sym, ns := binary.Uvarint(data)
		if ns <= 0 || ns >= len(data)+1 {
			return nil, ErrCorruptTable
		}
		data = data[ns:]
		if len(data) == 0 {
			return nil, ErrCorruptTable
		}
		entries = append(entries, symLen{sym: int(sym), n: data[0]})
		data = data[1:]
		if int(sym) <= prevSym {
			sorted = false
		}
		prevSym = int(sym)
	}
	if s != nil {
		s.entries = entries
	}
	if !sorted {
		// Legit streams store the table in ascending symbol order; accept
		// unsorted tables (the format does not forbid them) but reject
		// duplicate symbols, which make decoding ambiguous.
		seen := make(map[int]struct{}, len(entries))
		for _, e := range entries {
			if _, dup := seen[e.sym]; dup {
				return nil, ErrCorruptTable
			}
			seen[e.sym] = struct{}{}
		}
	}
	var local decodeTable
	t := &local
	if s != nil {
		t = &s.dec
	}
	if err := t.build(entries); err != nil {
		return nil, err
	}

	// Hostile-header guard: symCount is attacker-controlled, but each
	// symbol costs at least one payload bit, so the preallocation is capped
	// by the remaining payload size.
	bitsAvail := uint64(len(data)) * 8
	capHint := symCount
	if capHint > bitsAvail {
		capHint = bitsAvail
	}
	var out []int
	if s != nil && uint64(cap(s.decOut)) >= capHint {
		out = s.decOut[:0]
	} else {
		out = make([]int, 0, capHint)
	}

	var acc uint64 // pending bits, MSB-aligned at bit 63
	var nacc uint
	pos := 0
	peek := t.peek
	maxLen := uint(t.maxLen)
	for uint64(len(out)) < symCount {
		// Refill so the accumulator holds every bit a code could need
		// (maxCodeLen ≤ 48 < 57). Past the end of the payload the low bits
		// stay zero, exactly like the encoder's zero padding; bitsAvail
		// still bounds what may be consumed.
		for nacc <= 56 && pos < len(data) {
			acc |= uint64(data[pos]) << (56 - nacc)
			nacc += 8
			pos++
		}
		var n uint
		var sym int
		if e := t.lut[acc>>(64-peek)]; e != 0 {
			n = uint(e & 63)
			sym = t.symbols[e>>6]
		} else {
			n = peek
			for {
				n++
				if n > maxLen {
					return nil, ErrCorruptData
				}
				c := acc >> (64 - n)
				if t.count[n] > 0 && c >= t.firstCode[n] &&
					c-t.firstCode[n] < uint64(t.count[n]) {
					sym = t.symbols[uint64(t.firstIdx[n])+(c-t.firstCode[n])]
					break
				}
			}
		}
		if uint64(n) > bitsAvail {
			return nil, ErrCorruptData
		}
		bitsAvail -= uint64(n)
		acc <<= n
		nacc -= n
		out = append(out, sym)
	}
	if s != nil {
		s.decOut = out
	}
	return out, nil
}

// EncodedSizeBound returns a loose upper bound on the compressed size of n
// symbols with the given distinct-symbol count, used for pre-allocation.
func EncodedSizeBound(n, distinct int) int {
	return 16 + 10*distinct + n*maxCodeLen/8 + 1
}
