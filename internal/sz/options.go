// Package sz implements a pure-Go prediction-based error-bounded lossy
// compressor in the style of SZ/cuSZ, the compressor the paper configures
// (Sec. 2.2). The pipeline is:
//
//  1. Predict each value with a first-order 3-D Lorenzo predictor (on the
//     already-reconstructed neighbours, as CPU-SZ does, or on pre-quantized
//     integers, as GPU-SZ/cuSZ does — both variants are provided because
//     Sec. 3.2 of the paper discusses their identical error behaviour).
//  2. Error-controlled linear-scaling quantization of the prediction
//     residual with a user-set error bound. This yields the uniform
//     U[−eb, +eb] error distribution the paper's models build on.
//  3. Entropy coding: run-length tokens for runs of the "perfect
//     prediction" code followed by canonical Huffman coding. The RLE stage
//     is what lets bit rates drop below 1 bit/value at high error bounds,
//     mirroring SZ's lossless stage.
//
// The compressor guarantees max |x − x̂| ≤ eb in ABS mode and
// |x − x̂|/|x| ≤ eb in PW_REL mode (positive data), and the tests enforce
// both properties with property-based checks.
package sz

import (
	"errors"
	"fmt"
)

// Mode selects the error-bound semantics.
type Mode uint8

const (
	// ABS bounds the absolute pointwise error: |x − x̂| ≤ ErrorBound.
	ABS Mode = iota
	// PWREL bounds the pointwise relative error for strictly positive
	// data: |x − x̂| ≤ ErrorBound·|x|. Implemented via a log transform,
	// as in SZ.
	PWREL
)

func (m Mode) String() string {
	switch m {
	case ABS:
		return "ABS"
	case PWREL:
		return "PW_REL"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Predictor selects the prediction scheme (ablation knob; the paper's
// models assume Lorenzo).
type Predictor uint8

const (
	// Lorenzo3D is the first-order 3-D Lorenzo predictor used by SZ.
	Lorenzo3D Predictor = iota
	// MeanNeighbor predicts the average of the three causal axis
	// neighbours; kept for the predictor ablation bench.
	MeanNeighbor
)

func (p Predictor) String() string {
	switch p {
	case Lorenzo3D:
		return "lorenzo3d"
	case MeanNeighbor:
		return "mean-neighbor"
	default:
		return fmt.Sprintf("Predictor(%d)", uint8(p))
	}
}

// DefaultRadius is the quantization radius: residuals quantize into
// (−radius, +radius) bins; anything outside is stored verbatim as an
// outlier. 32768 matches SZ's default 65536-bin configuration.
const DefaultRadius = 32768

// Options configures a compression run.
type Options struct {
	Mode       Mode
	ErrorBound float64
	// Radius overrides DefaultRadius when > 0.
	Radius int
	// Predictor selects the prediction scheme (default Lorenzo3D).
	Predictor Predictor
	// QuantizeBeforePredict selects the GPU-SZ (cuSZ) formulation where
	// values are pre-quantized onto the eb lattice and Lorenzo runs on
	// integers. Error distribution is uniform either way (paper Sec. 3.2).
	QuantizeBeforePredict bool
}

func (o Options) radius() int {
	if o.Radius > 0 {
		return o.Radius
	}
	return DefaultRadius
}

// Validate checks the options for use on data of length n.
func (o Options) Validate() error {
	if o.ErrorBound <= 0 {
		return errors.New("sz: error bound must be positive")
	}
	if o.Mode != ABS && o.Mode != PWREL {
		return fmt.Errorf("sz: unknown mode %v", o.Mode)
	}
	if o.Mode == PWREL && o.ErrorBound >= 1 {
		return errors.New("sz: PW_REL error bound must be < 1")
	}
	if o.Predictor != Lorenzo3D && o.Predictor != MeanNeighbor {
		return fmt.Errorf("sz: unknown predictor %v", o.Predictor)
	}
	if o.Radius < 0 || o.Radius == 1 {
		return fmt.Errorf("sz: invalid radius %d", o.Radius)
	}
	return nil
}
