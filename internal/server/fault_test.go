package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apierr"
	"repro/internal/codec"
	"repro/internal/core"
)

// --- chaos codec: detonates on a trigger cell value ----------------------

const chaosTrigger = float32(-1.2345678e18)

var errChaos = errors.New("chaos: injected codec panic")

type chaosCodec struct {
	id    codec.ID
	inner codec.Codec
}

func (c chaosCodec) ID() codec.ID { return c.id }

func (c chaosCodec) Compress(data []float32, nx, ny, nz int, opt codec.Options, s *codec.Scratch) (codec.Frame, error) {
	for _, v := range data {
		if v == chaosTrigger {
			panic(errChaos)
		}
	}
	return c.inner.Compress(data, nx, ny, nz, opt, s)
}

func (c chaosCodec) Parse(body []byte) (codec.Frame, error) { return c.inner.Parse(body) }

var chaosOnce sync.Once

func registerChaos(t *testing.T) codec.ID {
	t.Helper()
	chaosOnce.Do(func() {
		inner, err := codec.Lookup(codec.SZ)
		if err != nil {
			t.Fatal(err)
		}
		if err := codec.Register(chaosCodec{id: "chaos-srv", inner: inner}); err != nil {
			t.Fatal(err)
		}
	})
	return "chaos-srv"
}

// --- lame-duck drain -----------------------------------------------------

func TestDrainRefusesNewFinishesInflight(t *testing.T) {
	s, ts := testServer(t, core.Config{}, core.CalibrationOptions{}, Config{})
	body := EncodeField(testField(t, 16))

	// Warm request: calibrates the field, proves the server serves.
	if resp, out := post(t, ts.URL+"/v1/compress/rho", body, nil); resp.StatusCode != 200 {
		t.Fatalf("warm request: HTTP %d: %s", resp.StatusCode, out)
	}

	// Race one request against BeginDrain: whichever wins, the admitted
	// request must finish and the drain must complete.
	type res struct {
		code int
		body []byte
	}
	inflight := make(chan res, 1)
	go func() {
		resp, out := post(t, ts.URL+"/v1/compress/rho", body, nil)
		inflight <- res{resp.StatusCode, out}
	}()
	for s.Stats().Accepted < 2 && s.Stats().Rejected == 0 {
		time.Sleep(time.Millisecond)
	}
	s.BeginDrain()

	// New work is refused with the typed draining 503, never started.
	resp, out := post(t, ts.URL+"/v1/compress/rho", body, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain: HTTP %d: %s", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 is missing Retry-After")
	}
	if err := ErrorFromResponse(resp.StatusCode, out); !errors.Is(err, apierr.ErrDraining) {
		t.Errorf("ErrorFromResponse = %v, want ErrDraining", err)
	}

	// The in-flight request was admitted before the drain began (or
	// refused by it; both are legal outcomes of the race) — but it must
	// terminate, and an admitted one must succeed.
	r := <-inflight
	if r.code != 200 && r.code != http.StatusServiceUnavailable {
		t.Errorf("in-flight request: HTTP %d: %s", r.code, r.body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !s.Draining() {
		t.Error("Draining() = false after BeginDrain")
	}
	st := s.Stats()
	if !st.Draining {
		t.Error("stats do not report draining")
	}

	// Liveness flips too, telling the balancer to route elsewhere.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: HTTP %d", hresp.StatusCode)
	}
}

// --- Retry-After estimation ----------------------------------------------

func TestRetryAfterEstimate(t *testing.T) {
	fixed := time.Unix(1_000_000_000, 0)
	now := func() time.Time { return fixed }
	mkServer := func(cfg Config) *Server {
		t.Helper()
		s, err := newServer(testDriver(t, core.Config{}), core.CalibrationOptions{}, cfg, now)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	mkQ := func(tokens float64, costs ...int64) *tenantQ {
		tq := &tenantQ{name: "t", lastRefill: fixed, tokens: tokens}
		for _, c := range costs {
			tq.jobs = append(tq.jobs, &job{cost: c})
		}
		return tq
	}
	estimate := func(s *Server, tq *tenantQ) int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.retryAfterLocked(tq)
	}

	// Metered tenant: backlog (less banked tokens) over the refill rate.
	// (2×4096 − 500) / 1000 cells/s = 7.692s → ceil 8.
	s := mkServer(Config{TokenRate: 1000, TokenBurst: 500})
	if got := estimate(s, mkQ(500, 4096, 4096)); got != 8 {
		t.Errorf("metered estimate = %d, want 8", got)
	}

	// A crawling drain rate must not park clients forever: clamp at 30.
	s = mkServer(Config{TokenRate: 1, TokenBurst: 1})
	if got := estimate(s, mkQ(0, 4096, 4096)); got != 30 {
		t.Errorf("clamped estimate = %d, want 30", got)
	}

	// Banked tokens covering the whole backlog: the queue drains on the
	// next dispatcher pass, so the floor of 1 second applies.
	s = mkServer(Config{TokenRate: 1000, TokenBurst: 1 << 20})
	if got := estimate(s, mkQ(1<<20, 4096)); got != 1 {
		t.Errorf("covered-backlog estimate = %d, want 1", got)
	}

	// Unmetered and no throughput observed yet: fall back to 1, the old
	// hardcoded value.
	s = mkServer(Config{})
	if got := estimate(s, mkQ(0, 4096, 4096)); got != 1 {
		t.Errorf("no-rate estimate = %d, want 1", got)
	}
}

func TestOverloadResponseCarriesRetryAfter(t *testing.T) {
	// A token rate near zero parks every admitted job, so the queue fills
	// deterministically and the refusal's estimate clamps at 30s.
	s, ts := testServer(t, core.Config{}, core.CalibrationOptions{}, Config{
		QueueDepth: 2,
		TokenRate:  1e-6,
		TokenBurst: 1,
	})
	body := EncodeField(testField(t, 16))

	// Fill the queue. These handlers park until the test server's cleanup
	// closes the service (draining them with typed errors), so the
	// goroutines touch no testing state and are never waited on.
	fill := func() {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/compress/rho", bytes.NewReader(body))
		if err != nil {
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}
	go fill()
	go fill()
	// Probe only once both fillers are parked in the queue — a probe sent
	// earlier would itself be admitted and park forever.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Accepted < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	resp, out := post(t, ts.URL+"/v1/compress/rho", body, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: HTTP %d: %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Errorf("Retry-After = %q, want the clamped estimate \"30\"", got)
	}
	if err := ErrorFromResponse(resp.StatusCode, out); !errors.Is(err, apierr.ErrOverloaded) {
		t.Errorf("ErrorFromResponse = %v, want ErrOverloaded", err)
	}
}

// --- panic isolation -----------------------------------------------------

func TestCodecPanicIsolatedToOffendingRequest(t *testing.T) {
	id := registerChaos(t)
	s, ts := testServer(t, core.Config{Codec: id}, core.CalibrationOptions{}, Config{})

	hostile := testField(t, 16)
	hostile.Data[0] = chaosTrigger
	resp, out := post(t, ts.URL+"/v1/compress/rho", EncodeField(hostile), map[string]string{"X-Tenant": "evil"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("hostile compress: HTTP %d: %s", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), "panic") {
		t.Errorf("500 body does not identify the panic: %s", out)
	}

	// The panic was contained one field deep: the batch backstop never
	// fired, and the server keeps serving other tenants.
	if n := s.Stats().Panics; n != 0 {
		t.Errorf("batch-level panics = %d, want 0 (per-field isolation should have caught it)", n)
	}
	resp, out = post(t, ts.URL+"/v1/compress/rho", EncodeField(testField(t, 16)), map[string]string{"X-Tenant": "good"})
	if resp.StatusCode != 200 {
		t.Errorf("request after contained panic: HTTP %d: %s", resp.StatusCode, out)
	}
}

func TestExecuteBackstopFailsOnlyUnansweredJobs(t *testing.T) {
	s, err := newServer(testDriver(t, core.Config{}), core.CalibrationOptions{}, Config{}, time.Now)
	if err != nil {
		t.Fatal(err)
	}
	mkJob := func(kind jobKind) *job {
		return &job{
			kind: kind, tenant: "t", field: "x",
			data: testField(t, 16), cost: 4096,
			ctx: context.Background(), queued: time.Now(),
			done: make(chan jobResult, 1),
		}
	}
	good := mkJob(jobCalibrate)
	bad := mkJob(jobDecompress)
	bad.cf = nil // nil-archive decompress: a genuine nil-deref panic in execute

	s.execute([]*job{good, bad})

	gr := <-good.done
	if gr.err != nil || gr.cal == nil {
		t.Errorf("already-answered batch-mate lost its result: err=%v", gr.err)
	}
	br := <-bad.done
	if br.err == nil || !strings.Contains(br.err.Error(), "panicked") {
		t.Errorf("backstop error = %v, want a typed batch-panic failure", br.err)
	}
	if n := s.m.panics.Load(); n != 1 {
		t.Errorf("panics metric = %d, want 1", n)
	}
	_ = s.Close()
}

// --- per-tenant quality floors -------------------------------------------

func TestQualityFloorsCapBudgetScale(t *testing.T) {
	s, err := newServer(testDriver(t, core.Config{}), core.CalibrationOptions{}, Config{
		QualityFloors: map[string]float64{"capped": 1},
	}, time.Now)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mkJob := func(tenant string) *job {
		return &job{
			kind: jobCompress, tenant: tenant, field: "rho",
			data: testField(t, 16), cost: 4096,
			ctx: context.Background(), queued: time.Now(),
			done: make(chan jobResult, 1),
		}
	}
	capped, free := mkJob("capped"), mkJob("free")

	// Drive the batch at a stepped-up operating point, as the load
	// controller would under pressure.
	s.executeCompress([]*job{capped, free}, 2, 4.0)

	cr, fr := <-capped.done, <-free.done
	if cr.err != nil || fr.err != nil {
		t.Fatalf("batch errors: capped=%v free=%v", cr.err, fr.err)
	}
	if cr.scale != 1 {
		t.Errorf("floored tenant compressed at scale %g, contract cap is 1", cr.scale)
	}
	if fr.scale != 4 {
		t.Errorf("unfloored tenant scale = %g, want the controller's 4", fr.scale)
	}
	if string(cr.archive) == string(fr.archive) {
		t.Error("floored and stepped-up archives are identical; the floor did not change the operating point")
	}
}

func TestQualityFloorValidation(t *testing.T) {
	_, err := newServer(testDriver(t, core.Config{}), core.CalibrationOptions{}, Config{
		QualityFloors: map[string]float64{"t": 0.5},
	}, time.Now)
	if !errors.Is(err, apierr.ErrBadConfig) {
		t.Errorf("floor below 1: err = %v, want ErrBadConfig", err)
	}
}
