package experiments

import (
	"context"
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/nyx"
	"repro/internal/pipeline"
)

// timeseriesSteps is the run length of the streaming experiment: long
// enough that drift accumulates past the recalibration threshold several
// times, short enough for CI.
const timeseriesSteps = 8

// TimeseriesPipeline extends the Sec. 4.3 in situ overhead story across
// the time dimension: an evolving 8-step synthetic run is streamed through
// the pipeline driver under the three recalibration policies, for every
// registered codec. Calibrate-every-step is the quality reference (the
// model is never stale, at per-snapshot fitting cost); calibrate-once is
// the cheapest schedule (Fig. 10b's consistency assumption taken at face
// value); drift-triggered recalibrates only when the global mean feature
// moves, and the experiment shows it pays a near-calibrate-once cost at a
// near-every-step bit rate.
func TimeseriesPipeline(ctx *Context) (*Result, error) {
	snap, err := ctx.Snapshot(ctx.Cfg.Redshift)
	if err != nil {
		return nil, err
	}
	stream, err := nyx.NewStreamFrom(snap.Fields, nyx.StreamParams{
		Steps:  timeseriesSteps,
		Fields: []string{nyx.FieldBaryonDensity},
		Seed:   ctx.Cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	// Materialize the run once so every codec/policy cell compresses the
	// identical byte-for-byte timesteps.
	var steps []map[string]*grid.Field3D
	for {
		fields, err := stream.Next()
		if err != nil {
			break
		}
		steps = append(steps, fields)
	}

	res := &Result{
		ID:    "timeseries",
		Title: fmt.Sprintf("Streaming pipeline over %d evolving steps (baryon density)", timeseriesSteps),
		Cols: []string{"codec", "policy", "recals", "bitrate", "ratio",
			"vs_every_step", "cal_s", "compress_s"},
	}
	policies := []pipeline.Policy{
		pipeline.CalibrateEveryStep, pipeline.CalibrateOnce, pipeline.DriftTriggered,
	}
	for _, id := range codec.IDs() {
		var ref *pipeline.RunStats // the codec's calibrate-every-step run
		for _, pol := range policies {
			drv, err := pipeline.New(core.Config{
				PartitionDim: ctx.Cfg.PartitionDim,
				Workers:      ctx.Cfg.Workers,
				Codec:        id,
			}, pipeline.Options{Policy: pol, DriftThreshold: 0.25, RelAvgEB: 0.1})
			if err != nil {
				return nil, err
			}
			run, err := drv.Run(context.Background(), pipeline.FromSnapshots(steps))
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%s: %w", id, pol, err)
			}
			if pol == pipeline.CalibrateEveryStep {
				ref = run
			}
			res.AddRow(string(id), pol.String(),
				fmt.Sprintf("%d", run.Recalibrations),
				fnum(run.BitRate()), fnum(run.Ratio()),
				fmt.Sprintf("%+.2f%%", (run.BitRate()/ref.BitRate()-1)*100),
				fnum(run.CalibrateSeconds), fnum(run.CompressSeconds))
		}
	}
	res.Notef("fixed per-field budget (0.1×mean |value| at first calibration) across all policies, so bit rates are comparable; recals counts include each field's initial fit")
	res.Notef("the evolving source steepens the density field ~16%% per step, so drift-triggered (threshold 0.25) refits every few steps instead of every step")
	return res, nil
}
