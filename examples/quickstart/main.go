// Quickstart: generate a small synthetic cosmology field, calibrate the
// rate model, plan per-partition error bounds, and compare adaptive
// compression against the static baseline — the whole pipeline of the
// paper in ~60 lines, entirely through the public adaptive facade.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/adaptive"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// 1. A 64³ synthetic Nyx-like snapshot (stands in for real data).
	snap, err := adaptive.GenerateSnapshot(adaptive.SynthParams{N: 64, Seed: 1, Redshift: 42})
	if err != nil {
		log.Fatal(err)
	}
	density, err := snap.Field(adaptive.FieldBaryonDensity)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A system that cuts the field into 16³ bricks (64 partitions).
	// WithCodec picks the compression backend from the codec registry;
	// the default is "sz", and "zfp" runs the same pipeline fixed-rate.
	sys, err := adaptive.New(adaptive.WithPartitionDim(16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system codec: %s\n", sys.Codec())

	// 3. Calibrate the bit-rate/error-bound model once (paper Eq. 15).
	cal, err := sys.Calibrate(ctx, density)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rate model: bitrate = C_m · eb^%.3f (fit R² %.3f)\n",
		cal.Model.Exponent, cal.Model.FitR2)

	// 4. Derive the quality budget from the power-spectrum target
	// (P'(k)/P(k) within ±1 % for k < 10, 2σ confidence).
	avgEB, err := adaptive.SpectrumBudget(density, adaptive.BudgetOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quality budget: average error bound %.4g\n", avgEB)

	// 5. Plan per-partition bounds (paper Eq. 16 + clamp).
	plan, err := sys.Plan(ctx, density, cal, adaptive.PlanOptions{AvgEB: avgEB})
	if err != nil {
		log.Fatal(err)
	}
	var m adaptive.Moments
	for _, eb := range plan.EBs {
		m.Add(eb)
	}
	fmt.Printf("plan: %d partitions, eb from %.4g to %.4g\n",
		len(plan.EBs), m.Min(), m.Max())

	// 6. Compress both ways and compare.
	adaptiveCF, err := sys.CompressAdaptive(ctx, density, plan)
	if err != nil {
		log.Fatal(err)
	}
	static, err := sys.CompressStatic(ctx, density, avgEB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static   ratio: %6.2f (%.3f bits/value)\n", static.Ratio(), static.BitRate())
	fmt.Printf("adaptive ratio: %6.2f (%.3f bits/value)  %+.1f%%\n",
		adaptiveCF.Ratio(), adaptiveCF.BitRate(), (adaptiveCF.Ratio()/static.Ratio()-1)*100)

	// 7. Round-trip and verify the error bound held everywhere.
	recon, err := adaptiveCF.Decompress(ctx)
	if err != nil {
		log.Fatal(err)
	}
	maxErr, err := adaptive.MaxAbsError(density.Data, recon.Data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max pointwise error %.4g (largest assigned bound %.4g)\n", maxErr, m.Max())
}
