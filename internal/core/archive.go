package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/apierr"
	"repro/internal/codec"
)

// errCorrupt is the sentinel every archive-validation failure in this file
// wraps (re-exported by the facade as adaptive.ErrCorruptArchive), so a
// reader can classify any parse failure with one errors.Is check.
var errCorrupt = apierr.ErrCorruptArchive

// readAtErr classifies an io.ReaderAt failure: running off the end of the
// stream is truncation — corruption — but any other I/O failure (a closed
// handle, a transient EIO from network storage) is passed through
// untagged, so a caller that quarantines archives on ErrCorruptArchive
// never condemns a healthy file over a flaky read.
func readAtErr(what string, err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("core: %s: %w: %w", what, errCorrupt, err)
	}
	return fmt.Errorf("core: %s: %w", what, err)
}

// Archive framing for a CompressedField: a small header followed by
// length-prefixed self-describing codec frames, one per partition in
// partition-ID order.
//
//	offset size  field
//	0      4     magic "ACFD"
//	4      4     version (2)
//	8      12    nx, ny, nz (uint32)
//	20     4     partition dim
//	24     4     partition count
//	28     ...   per partition: uint32 length + codec frame envelope
//
// Version 2 switched the per-partition payload from raw sz streams to
// codec envelopes (codec ID + version + native stream), so archives decode
// without out-of-band knowledge of the producing backend — including
// archives whose partitions mix codecs.
const (
	archiveMagic   = "ACFD"
	archiveVersion = 2
	archiveHeader  = 28
)

// Bytes serializes the compressed field. Each partition's native stream
// carries its own integrity checks (sz CRCs its payload), so the archive
// needs no extra checksum.
func (cf *CompressedField) Bytes() []byte {
	out := make([]byte, archiveHeader, archiveHeader+cf.CompressedSize()+16*len(cf.Parts))
	copy(out[0:4], archiveMagic)
	binary.LittleEndian.PutUint32(out[4:8], archiveVersion)
	binary.LittleEndian.PutUint32(out[8:12], uint32(cf.Nx))
	binary.LittleEndian.PutUint32(out[12:16], uint32(cf.Ny))
	binary.LittleEndian.PutUint32(out[16:20], uint32(cf.Nz))
	binary.LittleEndian.PutUint32(out[20:24], uint32(cf.PartitionDim))
	binary.LittleEndian.PutUint32(out[24:28], uint32(len(cf.Parts)))
	for _, p := range cf.Parts {
		blob := codec.EncodeFrame(p)
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(blob)))
		out = append(out, lenBuf[:]...)
		out = append(out, blob...)
	}
	return out
}

// ParseCompressedField reverses Bytes, resolving each partition's codec
// from its frame header and validating every stream.
func ParseCompressedField(data []byte) (*CompressedField, error) {
	return ParseCompressedFieldWith(data, codec.Default)
}

// ParseCompressedFieldWith is ParseCompressedField against a specific
// codec registry.
func ParseCompressedFieldWith(data []byte, reg *codec.Registry) (*CompressedField, error) {
	if len(data) < archiveHeader {
		return nil, fmt.Errorf("core: %w: archive shorter than header", errCorrupt)
	}
	if string(data[0:4]) != archiveMagic {
		return nil, fmt.Errorf("core: %w: bad archive magic %q", errCorrupt, data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != archiveVersion {
		return nil, fmt.Errorf("core: %w: unsupported archive version %d", errCorrupt, v)
	}
	cf := &CompressedField{
		Nx:           int(binary.LittleEndian.Uint32(data[8:12])),
		Ny:           int(binary.LittleEndian.Uint32(data[12:16])),
		Nz:           int(binary.LittleEndian.Uint32(data[16:20])),
		PartitionDim: int(binary.LittleEndian.Uint32(data[20:24])),
	}
	count := int(binary.LittleEndian.Uint32(data[24:28]))
	// A partition costs at least its 4-byte length prefix, so a count beyond
	// the remaining bytes/4 is corrupt; rejecting it here also keeps the
	// Parts pre-allocation honest on malicious headers.
	// maxArchiveDim bounds each axis so Nx·Ny·Nz cannot overflow int and a
	// hostile header cannot make Decompress allocate an absurd field.
	const maxArchiveDim = 1 << 20
	if cf.Nx <= 0 || cf.Ny <= 0 || cf.Nz <= 0 || cf.PartitionDim <= 0 || count <= 0 ||
		cf.Nx > maxArchiveDim || cf.Ny > maxArchiveDim || cf.Nz > maxArchiveDim ||
		count > (len(data)-archiveHeader)/4 {
		return nil, fmt.Errorf("core: %w: invalid archive header (%d×%d×%d / dim %d / %d parts)",
			errCorrupt, cf.Nx, cf.Ny, cf.Nz, cf.PartitionDim, count)
	}
	pos := archiveHeader
	cf.Parts = make([]codec.Frame, 0, count)
	for i := 0; i < count; i++ {
		if pos+4 > len(data) {
			return nil, fmt.Errorf("core: %w: archive truncated at partition %d", errCorrupt, i)
		}
		n := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		pos += 4
		if pos+n > len(data) {
			return nil, fmt.Errorf("core: %w: partition %d stream truncated", errCorrupt, i)
		}
		p, err := reg.DecodeFrame(data[pos : pos+n])
		if err != nil {
			// Both the taxonomy sentinel and the codec-level cause are
			// wrapped, so errors.Is sees ErrCorruptArchive here and (for a
			// frame naming a foreign backend) ErrCodecUnknown from below.
			return nil, fmt.Errorf("core: partition %d: %w: %w", i, errCorrupt, err)
		}
		cf.Parts = append(cf.Parts, p)
		pos += n
	}
	if pos != len(data) {
		return nil, fmt.Errorf("core: %w: %d trailing bytes in archive", errCorrupt, len(data)-pos)
	}
	cf.Codec = cf.Parts[0].CodecID()
	return cf, nil
}

// --- Archive v3: multi-snapshot stream container -------------------------
//
// Version 3 is the streaming form of the archive: a header, then one block
// per simulation step appended as the step is compressed, then a footer
// index written once at Close. Each step block holds the step's fields in
// name order; each field payload is a complete v2 single-field archive, so
// every partition stream inside is still a self-describing codec envelope.
//
//	header (16 bytes)
//	  0   4   magic "ACS3"
//	  4   4   version (3)
//	  8   8   reserved (0)
//	step block (appended per step)
//	  uint32  field count
//	  per field: uint16 name length, name bytes,
//	             uint32 payload length, v2 archive payload
//	footer (written at Close)
//	  per step: uint64 offset, uint64 length   (the index)
//	  uint32  step count
//	  uint64  index offset
//	  4       magic "ACSX"
//
// The footer is fixed-size from the end, so a reader locates the index with
// one read and then seeks to any step in O(1) — no scan through earlier
// steps, which is what makes post-hoc analysis of one late timestep cheap
// even for long runs.
const (
	streamMagic        = "ACS3"
	streamTrailerMagic = "ACSX"
	streamVersion      = 3
	streamHeaderBytes  = 16
	streamTrailerBytes = 16 // step count + index offset + trailer magic
)

type streamIndexEntry struct {
	Offset, Length uint64
}

// appendStreamFooter appends the v3 footer (index entries, step count,
// index offset, trailer magic) for steps ending at indexOff. Shared by
// Close, checkpoint snapshots, and StreamReader.WriteTo so all three emit
// bit-identical footers.
func appendStreamFooter(buf []byte, index []streamIndexEntry, indexOff uint64) []byte {
	if cap(buf) == 0 {
		buf = make([]byte, 0, 16*len(index)+streamTrailerBytes)
	}
	var scratch [8]byte
	for _, e := range index {
		binary.LittleEndian.PutUint64(scratch[:], e.Offset)
		buf = append(buf, scratch[:]...)
		binary.LittleEndian.PutUint64(scratch[:], e.Length)
		buf = append(buf, scratch[:]...)
	}
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(index)))
	buf = append(buf, scratch[:4]...)
	binary.LittleEndian.PutUint64(scratch[:], indexOff)
	buf = append(buf, scratch[:]...)
	return append(buf, streamTrailerMagic...)
}

// StreamWriter appends compressed steps to an archive v3 stream. It only
// needs an io.Writer: offsets are tracked by counting, so the destination
// can be a pipe or an append-only log as well as a file. Not safe for
// concurrent use.
type StreamWriter struct {
	w      io.Writer
	off    uint64
	index  []streamIndexEntry
	closed bool
	// closeErr makes a failed footer write sticky: every later Close
	// reports it instead of claiming success on a truncated stream.
	closeErr error
	// writeErr poisons the writer after a failed WriteStep: the destination
	// may hold a short write at an unknown offset, so sw.off no longer
	// matches the real stream position and appending more steps (or a
	// footer indexing them) would silently corrupt the archive. Every later
	// WriteStep and Close reports this error instead.
	writeErr error

	// Checkpoint state (nil wAt = checkpointing off; the plain-writer code
	// path is untouched and its output byte-identical).
	ckpt      CheckpointOptions
	wAt       io.WriterAt
	trunc     interface{ Truncate(int64) error }
	sinceCkpt int
	// extent is the farthest byte ever written, including checkpoint
	// footers beyond off; Close truncates back to the true stream end.
	extent uint64
}

// CheckpointOptions tunes the stream writer's crash-recovery checkpoints.
type CheckpointOptions struct {
	// Interval is the number of steps between footer snapshots (default 1:
	// snapshot after every step).
	Interval int
	// Sync fsyncs the destination after each snapshot when it implements
	// Sync() error (an *os.File does). With Sync on, a crash loses at most
	// Interval steps — the bounded-loss contract; without it the loss
	// bound is whatever the OS page cache had not flushed.
	Sync bool
}

// NewCheckpointedStreamWriter is NewStreamWriter with crash-recovery
// checkpoints: after every Interval steps the current footer index is
// written at the stream's tail via WriteAt — without advancing the append
// cursor — so the artifact on disk is a complete, OpenStream-valid v3
// stream at every checkpoint. The next WriteStep simply overwrites the
// snapshot with real step bytes. A crash therefore leaves either a
// directly openable stream (crash between steps) or a torn one whose
// checkpointed prefix RecoverStream salvages in full.
//
// The destination must implement io.WriterAt and Truncate(int64) error —
// an *os.File does — because snapshots may extend the file past the final
// footer, which Close truncates away. The emitted byte stream is
// indistinguishable from NewStreamWriter's once Close returns.
func NewCheckpointedStreamWriter(w io.Writer, opt CheckpointOptions) (*StreamWriter, error) {
	wAt, ok := w.(io.WriterAt)
	if !ok {
		return nil, fmt.Errorf("core: checkpointed stream writer needs io.WriterAt, %T does not implement it", w)
	}
	trunc, ok := w.(interface{ Truncate(int64) error })
	if !ok {
		return nil, fmt.Errorf("core: checkpointed stream writer needs Truncate(int64), %T does not implement it", w)
	}
	if opt.Interval <= 0 {
		opt.Interval = 1
	}
	sw, err := NewStreamWriter(w)
	if err != nil {
		return nil, err
	}
	sw.ckpt, sw.wAt, sw.trunc = opt, wAt, trunc
	sw.extent = sw.off
	return sw, nil
}

// checkpoint snapshots the footer at the current tail. sw.off is not
// advanced: the snapshot lives past the logical stream end and is
// overwritten by the next step (or superseded by Close's real footer).
func (sw *StreamWriter) checkpoint() error {
	buf := appendStreamFooter(nil, sw.index, sw.off)
	if _, err := sw.wAt.WriteAt(buf, int64(sw.off)); err != nil {
		return fmt.Errorf("core: stream checkpoint after step %d: %w", len(sw.index), err)
	}
	if end := sw.off + uint64(len(buf)); end > sw.extent {
		sw.extent = end
	}
	if sw.ckpt.Sync {
		if err := sw.sync(); err != nil {
			return fmt.Errorf("core: stream checkpoint sync after step %d: %w", len(sw.index), err)
		}
	}
	sw.sinceCkpt = 0
	return nil
}

func (sw *StreamWriter) sync() error {
	if s, ok := sw.w.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// NewStreamWriter writes the stream header and returns a writer ready to
// accept steps.
func NewStreamWriter(w io.Writer) (*StreamWriter, error) {
	var hdr [streamHeaderBytes]byte
	copy(hdr[0:4], streamMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], streamVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("core: stream header: %w", err)
	}
	return &StreamWriter{w: w, off: streamHeaderBytes}, nil
}

// WriteStep appends one step's fields (in sorted name order, so the byte
// stream is deterministic regardless of map iteration). A failed append
// poisons the writer: the error is sticky, and both later WriteStep and
// Close calls keep returning it rather than appending at a stale offset
// into a stream that already holds a partial step.
func (sw *StreamWriter) WriteStep(fields map[string]*CompressedField) error {
	if sw.writeErr != nil {
		return sw.writeErr
	}
	if sw.closed {
		return fmt.Errorf("core: stream writer is closed")
	}
	if len(fields) == 0 {
		return fmt.Errorf("core: step has no fields")
	}
	names := make([]string, 0, len(fields))
	for name := range fields {
		if len(name) == 0 || len(name) > 1<<16-1 {
			return fmt.Errorf("core: invalid field name %q", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var buf []byte
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], uint32(len(names)))
	buf = append(buf, scratch[:]...)
	for _, name := range names {
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(name)))
		buf = append(buf, scratch[:2]...)
		buf = append(buf, name...)
		blob := fields[name].Bytes()
		if uint64(len(blob)) > 1<<32-1 {
			return fmt.Errorf("core: field %q payload %d bytes exceeds the stream's 4 GiB field limit", name, len(blob))
		}
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(blob)))
		buf = append(buf, scratch[:]...)
		buf = append(buf, blob...)
	}
	if _, err := sw.w.Write(buf); err != nil {
		sw.writeErr = fmt.Errorf("core: stream step %d: %w", len(sw.index), err)
		return sw.writeErr
	}
	sw.index = append(sw.index, streamIndexEntry{Offset: sw.off, Length: uint64(len(buf))})
	sw.off += uint64(len(buf))
	if sw.off > sw.extent {
		sw.extent = sw.off
	}
	if sw.wAt != nil {
		// A checkpoint failure does not poison the writer — the step above
		// landed and sw.off is accurate — but it is surfaced: the caller's
		// durability contract (bounded loss) just broke, and on a dying disk
		// aborting the run beats discovering the loss after the crash.
		if sw.sinceCkpt++; sw.sinceCkpt >= sw.ckpt.Interval {
			return sw.checkpoint()
		}
	}
	return nil
}

// Steps returns the number of steps written so far.
func (sw *StreamWriter) Steps() int { return len(sw.index) }

// TruncateSteps rewinds the stream to its state after step n (keeping
// steps [0, n)): the distributed step-retry primitive. When a rank dies
// mid-step, every survivor may already have appended its shard block for
// the failed step; the retry — with rebalanced ownership — rewrites that
// step from scratch, so the half-committed block must be cut off first.
//
// The destination must implement Truncate(int64) error and io.Seeker (an
// *os.File does): Truncate alone does not move the file's write cursor,
// so the append position is explicitly re-seeked to the new end. A
// truncation failure poisons the writer like a failed step write — the
// real stream position is unknowable afterwards.
func (sw *StreamWriter) TruncateSteps(n int) error {
	if sw.writeErr != nil {
		return sw.writeErr
	}
	if sw.closed {
		return fmt.Errorf("core: stream writer is closed")
	}
	if n < 0 || n > len(sw.index) {
		return fmt.Errorf("core: truncate to %d steps outside [0,%d]", n, len(sw.index))
	}
	if n == len(sw.index) {
		return nil
	}
	trunc, ok := sw.w.(interface{ Truncate(int64) error })
	if !ok {
		return fmt.Errorf("core: stream truncation needs Truncate(int64), %T does not implement it", sw.w)
	}
	seeker, ok := sw.w.(io.Seeker)
	if !ok {
		return fmt.Errorf("core: stream truncation needs io.Seeker, %T does not implement it", sw.w)
	}
	end := uint64(streamHeaderBytes)
	if n > 0 {
		end = sw.index[n-1].Offset + sw.index[n-1].Length
	}
	if err := trunc.Truncate(int64(end)); err != nil {
		sw.writeErr = fmt.Errorf("core: truncating stream to step %d: %w", n, err)
		return sw.writeErr
	}
	if _, err := seeker.Seek(int64(end), io.SeekStart); err != nil {
		sw.writeErr = fmt.Errorf("core: seeking stream to step %d: %w", n, err)
		return sw.writeErr
	}
	sw.index = sw.index[:n]
	sw.off = end
	sw.extent = end
	sw.sinceCkpt = 0
	return nil
}

// Close appends the footer index. The writer cannot be used afterwards;
// closing an empty stream is valid and yields a zero-step archive. A
// footer-write failure is sticky: repeated Close calls keep returning it,
// so a deferred second Close cannot mask a truncated stream. A writer
// poisoned by a failed WriteStep refuses to finalize at all — the footer
// would land at a stale offset — and Close reports the original failure.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return sw.closeErr
	}
	sw.closed = true
	if sw.writeErr != nil {
		sw.closeErr = fmt.Errorf("core: stream not finalized after failed step write: %w", sw.writeErr)
		return sw.closeErr
	}
	buf := appendStreamFooter(nil, sw.index, sw.off)
	if _, err := sw.w.Write(buf); err != nil {
		sw.closeErr = fmt.Errorf("core: stream footer: %w", err)
		return sw.closeErr
	}
	if sw.wAt != nil {
		// Checkpoint snapshots may have pushed the file past the real
		// stream end (a snapshot footer is longer than the steps written
		// after it); truncate so the artifact's size is exactly the stream.
		if end := sw.off + uint64(len(buf)); sw.extent > end {
			if err := sw.trunc.Truncate(int64(end)); err != nil {
				sw.closeErr = fmt.Errorf("core: truncating checkpoint residue: %w", err)
				return sw.closeErr
			}
		}
		if sw.ckpt.Sync {
			if err := sw.sync(); err != nil {
				sw.closeErr = fmt.Errorf("core: stream close sync: %w", err)
			}
		}
	}
	return sw.closeErr
}

// StreamReader reads an archive v3 stream with O(1) access to any step.
//
// A StreamReader is safe for concurrent use by multiple goroutines: all
// of its state (the step index, the registry) is immutable after
// OpenStream, every read method works on its own buffer, and positions
// are always passed explicitly to the underlying io.ReaderAt — there is
// no shared cursor. The only requirement is that the ReaderAt itself
// honors io.ReaderAt's contract of supporting parallel ReadAt calls,
// which *os.File, *bytes.Reader, and *io.SectionReader all do. One open
// stream can therefore serve many readers at once — the fan-out an
// archive server needs.
type StreamReader struct {
	r     io.ReaderAt
	index []streamIndexEntry
	reg   *codec.Registry
}

// OpenStream validates the header and footer of a v3 stream and loads its
// step index. size is the total byte length of the stream.
func OpenStream(r io.ReaderAt, size int64) (*StreamReader, error) {
	return OpenStreamWith(r, size, codec.Default)
}

// OpenStreamWith is OpenStream against a specific codec registry.
func OpenStreamWith(r io.ReaderAt, size int64, reg *codec.Registry) (*StreamReader, error) {
	if size < streamHeaderBytes+streamTrailerBytes {
		return nil, fmt.Errorf("core: %w: stream shorter than header+footer", errCorrupt)
	}
	var hdr [streamHeaderBytes]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, readAtErr("stream header", err)
	}
	if string(hdr[0:4]) != streamMagic {
		return nil, fmt.Errorf("core: %w: bad stream magic %q", errCorrupt, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != streamVersion {
		return nil, fmt.Errorf("core: %w: unsupported stream version %d", errCorrupt, v)
	}
	var trailer [streamTrailerBytes]byte
	if _, err := r.ReadAt(trailer[:], size-streamTrailerBytes); err != nil {
		return nil, readAtErr("stream trailer", err)
	}
	if string(trailer[12:16]) != streamTrailerMagic {
		return nil, fmt.Errorf("core: %w: bad stream trailer magic %q", errCorrupt, trailer[12:16])
	}
	count := int(binary.LittleEndian.Uint32(trailer[0:4]))
	indexOff := binary.LittleEndian.Uint64(trailer[4:12])
	indexLen := 16 * uint64(count)
	if indexLen > uint64(size) || indexOff > uint64(size) ||
		indexOff < streamHeaderBytes || indexOff+indexLen != uint64(size-streamTrailerBytes) {
		return nil, fmt.Errorf("core: %w: stream index at %d (%d steps) inconsistent with size %d",
			errCorrupt, indexOff, count, size)
	}
	raw := make([]byte, indexLen)
	if count > 0 {
		if _, err := r.ReadAt(raw, int64(indexOff)); err != nil {
			return nil, readAtErr("stream index", err)
		}
	}
	index := make([]streamIndexEntry, count)
	end := uint64(streamHeaderBytes)
	for i := range index {
		index[i].Offset = binary.LittleEndian.Uint64(raw[16*i:])
		index[i].Length = binary.LittleEndian.Uint64(raw[16*i+8:])
		// Steps are appended back to back, so the index must tile
		// [header, indexOff) exactly; anything else is corruption.
		if index[i].Offset != end || index[i].Length == 0 {
			return nil, fmt.Errorf("core: %w: stream index entry %d ([%d,+%d)) does not follow previous step at %d",
				errCorrupt, i, index[i].Offset, index[i].Length, end)
		}
		end += index[i].Length
	}
	if end != indexOff {
		return nil, fmt.Errorf("core: %w: stream steps end at %d, index starts at %d", errCorrupt, end, indexOff)
	}
	return &StreamReader{r: r, index: index, reg: reg}, nil
}

// Steps returns the number of steps in the stream.
func (sr *StreamReader) Steps() int { return len(sr.index) }

// ReadStep decodes step i's fields. Only the step's own byte range is read:
// access cost is independent of the step's position in the stream.
func (sr *StreamReader) ReadStep(i int) (map[string]*CompressedField, error) {
	if i < 0 || i >= len(sr.index) {
		return nil, fmt.Errorf("core: step %d out of range [0,%d)", i, len(sr.index))
	}
	e := sr.index[i]
	buf := make([]byte, e.Length)
	if _, err := sr.r.ReadAt(buf, int64(e.Offset)); err != nil {
		return nil, readAtErr(fmt.Sprintf("stream step %d", i), err)
	}
	return parseStepBlock(buf, i, sr.reg)
}

// StepSection returns a zero-copy io.SectionReader over step i's raw
// block bytes — the concurrent-reader seek primitive: each caller gets
// its own section (own cursor) over the shared ReaderAt, so goroutines
// can stream different steps from one open stream without coordination.
func (sr *StreamReader) StepSection(i int) (*io.SectionReader, error) {
	if i < 0 || i >= len(sr.index) {
		return nil, fmt.Errorf("core: step %d out of range [0,%d)", i, len(sr.index))
	}
	e := sr.index[i]
	return io.NewSectionReader(sr.r, int64(e.Offset), int64(e.Length)), nil
}

// PartitionLayout locates one partition's codec-native stream inside the
// v3 file (offsets are absolute file positions).
type PartitionLayout struct {
	Codec codec.ID
	// BodyOffset/BodyLength span the codec-native stream — the bytes a
	// codec's Parse consumes, with the frame envelope already stripped.
	BodyOffset, BodyLength int64
}

// FieldLayout locates one field of one step: its complete v2 archive
// payload and each partition's codec-native stream within it. This is the
// structural view an archive server serves from — it can hand a stored
// field to a client as one file range (ArchiveOffset/ArchiveLength) or
// splice individual partition streams without ever decoding a frame.
type FieldLayout struct {
	Name                     string
	Nx, Ny, Nz, PartitionDim int
	// ArchiveOffset/ArchiveLength span the field's v2 archive (header
	// included) inside the stream file.
	ArchiveOffset, ArchiveLength int64
	Partitions                   []PartitionLayout
}

// StepLayout maps step i's byte structure without decoding any codec
// frame: field names and geometry, the file range of each field's v2
// archive, and the file range of every partition's codec-native stream.
// Validation matches ReadStep's structural checks (counts, ordering,
// truncation, envelope headers); the codec-native payloads themselves are
// not parsed — their own magic/CRC checks run when the bytes are used.
func (sr *StreamReader) StepLayout(i int) ([]FieldLayout, error) {
	if i < 0 || i >= len(sr.index) {
		return nil, fmt.Errorf("core: step %d out of range [0,%d)", i, len(sr.index))
	}
	e := sr.index[i]
	buf := make([]byte, e.Length)
	if _, err := sr.r.ReadAt(buf, int64(e.Offset)); err != nil {
		return nil, readAtErr(fmt.Sprintf("stream step %d", i), err)
	}
	base := int64(e.Offset)
	if len(buf) < 4 {
		return nil, fmt.Errorf("core: %w: step %d block shorter than field count", errCorrupt, i)
	}
	count := int(binary.LittleEndian.Uint32(buf[0:4]))
	if count <= 0 || count > len(buf)/7+1 {
		return nil, fmt.Errorf("core: %w: step %d has field count %d", errCorrupt, i, count)
	}
	pos := 4
	layouts := make([]FieldLayout, 0, count)
	prevName := ""
	for j := 0; j < count; j++ {
		if pos+2 > len(buf) {
			return nil, fmt.Errorf("core: %w: step %d truncated at field %d name length", errCorrupt, i, j)
		}
		nameLen := int(binary.LittleEndian.Uint16(buf[pos : pos+2]))
		pos += 2
		if nameLen == 0 || pos+nameLen > len(buf) {
			return nil, fmt.Errorf("core: %w: step %d truncated inside field %d name", errCorrupt, i, j)
		}
		name := string(buf[pos : pos+nameLen])
		pos += nameLen
		if name <= prevName {
			return nil, fmt.Errorf("core: %w: step %d field %q out of sorted order", errCorrupt, i, name)
		}
		prevName = name
		if pos+4 > len(buf) {
			return nil, fmt.Errorf("core: %w: step %d truncated at field %q payload length", errCorrupt, i, name)
		}
		n := int(binary.LittleEndian.Uint32(buf[pos : pos+4]))
		pos += 4
		if n < 0 || pos+n > len(buf) {
			return nil, fmt.Errorf("core: %w: step %d field %q payload truncated", errCorrupt, i, name)
		}
		fl, err := fieldLayout(buf[pos:pos+n], base+int64(pos))
		if err != nil {
			return nil, fmt.Errorf("core: step %d field %q: %w", i, name, err)
		}
		fl.Name = name
		layouts = append(layouts, fl)
		pos += n
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("core: %w: step %d has %d trailing bytes", errCorrupt, i, len(buf)-pos)
	}
	return layouts, nil
}

// fieldLayout walks one v2 archive's structure. base is the archive's
// absolute offset in the stream file; data is its complete byte range.
func fieldLayout(data []byte, base int64) (FieldLayout, error) {
	var fl FieldLayout
	if len(data) < archiveHeader {
		return fl, fmt.Errorf("core: %w: archive shorter than header", errCorrupt)
	}
	if string(data[0:4]) != archiveMagic {
		return fl, fmt.Errorf("core: %w: bad archive magic %q", errCorrupt, data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != archiveVersion {
		return fl, fmt.Errorf("core: %w: unsupported archive version %d", errCorrupt, v)
	}
	fl.Nx = int(binary.LittleEndian.Uint32(data[8:12]))
	fl.Ny = int(binary.LittleEndian.Uint32(data[12:16]))
	fl.Nz = int(binary.LittleEndian.Uint32(data[16:20]))
	fl.PartitionDim = int(binary.LittleEndian.Uint32(data[20:24]))
	count := int(binary.LittleEndian.Uint32(data[24:28]))
	const maxArchiveDim = 1 << 20
	if fl.Nx <= 0 || fl.Ny <= 0 || fl.Nz <= 0 || fl.PartitionDim <= 0 || count <= 0 ||
		fl.Nx > maxArchiveDim || fl.Ny > maxArchiveDim || fl.Nz > maxArchiveDim ||
		count > (len(data)-archiveHeader)/4 {
		return fl, fmt.Errorf("core: %w: invalid archive header (%d×%d×%d / dim %d / %d parts)",
			errCorrupt, fl.Nx, fl.Ny, fl.Nz, fl.PartitionDim, count)
	}
	fl.ArchiveOffset, fl.ArchiveLength = base, int64(len(data))
	fl.Partitions = make([]PartitionLayout, 0, count)
	pos := archiveHeader
	for i := 0; i < count; i++ {
		if pos+4 > len(data) {
			return fl, fmt.Errorf("core: %w: archive truncated at partition %d", errCorrupt, i)
		}
		n := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		pos += 4
		if pos+n > len(data) {
			return fl, fmt.Errorf("core: %w: partition %d stream truncated", errCorrupt, i)
		}
		id, body, err := codec.FrameBody(data[pos : pos+n])
		if err != nil {
			return fl, fmt.Errorf("core: partition %d: %w: %w", i, errCorrupt, err)
		}
		bodyOff := base + int64(pos) + int64(n-len(body))
		fl.Partitions = append(fl.Partitions, PartitionLayout{
			Codec: id, BodyOffset: bodyOff, BodyLength: int64(len(body)),
		})
		pos += n
	}
	if pos != len(data) {
		return fl, fmt.Errorf("core: %w: %d trailing bytes in archive", errCorrupt, len(data)-pos)
	}
	return fl, nil
}

func parseStepBlock(buf []byte, step int, reg *codec.Registry) (map[string]*CompressedField, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("core: %w: step %d block shorter than field count", errCorrupt, step)
	}
	count := int(binary.LittleEndian.Uint32(buf[0:4]))
	// Each field needs at least a name length, one name byte, and a payload
	// length, so a count beyond len(buf)/7 cannot be honest.
	if count <= 0 || count > len(buf)/7+1 {
		return nil, fmt.Errorf("core: %w: step %d has field count %d", errCorrupt, step, count)
	}
	pos := 4
	fields := make(map[string]*CompressedField, count)
	prevName := ""
	for j := 0; j < count; j++ {
		if pos+2 > len(buf) {
			return nil, fmt.Errorf("core: %w: step %d truncated at field %d name length", errCorrupt, step, j)
		}
		nameLen := int(binary.LittleEndian.Uint16(buf[pos : pos+2]))
		pos += 2
		if nameLen == 0 || pos+nameLen > len(buf) {
			return nil, fmt.Errorf("core: %w: step %d truncated inside field %d name", errCorrupt, step, j)
		}
		name := string(buf[pos : pos+nameLen])
		pos += nameLen
		// The writer emits strictly increasing (sorted, unique) names, so a
		// block violating that order is hostile: a repeated name would
		// otherwise collapse silently into the map, and an unsorted block
		// would re-serialize differently than it parsed. Order is checked
		// against the previous name, which also catches every duplicate —
		// equal names are adjacent in sorted order, and a non-adjacent
		// repeat necessarily breaks the ordering first.
		if name <= prevName {
			if name == prevName {
				return nil, fmt.Errorf("core: %w: step %d has duplicate field %q", errCorrupt, step, name)
			}
			return nil, fmt.Errorf("core: %w: step %d field %q out of sorted order (follows %q)",
				errCorrupt, step, name, prevName)
		}
		prevName = name
		if pos+4 > len(buf) {
			return nil, fmt.Errorf("core: %w: step %d truncated at field %q payload length", errCorrupt, step, name)
		}
		n := int(binary.LittleEndian.Uint32(buf[pos : pos+4]))
		pos += 4
		if n < 0 || pos+n > len(buf) {
			return nil, fmt.Errorf("core: %w: step %d field %q payload truncated", errCorrupt, step, name)
		}
		cf, err := ParseCompressedFieldWith(buf[pos:pos+n], reg)
		if err != nil {
			// The nested v2 parse already tagged ErrCorruptArchive; keep
			// its chain intact and add the step/field position.
			return nil, fmt.Errorf("core: step %d field %q: %w", step, name, err)
		}
		fields[name] = cf
		pos += n
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("core: %w: step %d has %d trailing bytes", errCorrupt, step, len(buf)-pos)
	}
	return fields, nil
}
