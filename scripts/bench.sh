#!/usr/bin/env bash
# bench.sh — run the hot-path benchmark suite and record it in the
# BENCH_PR6.json trajectory file.
#
# Covers the substrate micro-benchmarks (SZCompress, SZDecompress,
# ZFPCompress, ZFPDecompress, HuffmanEncode, HuffmanDecode), the
# end-to-end paths whose allocation flatness the perf work must preserve
# (AdaptivePipeline, PipelineStream), and the calibration paths the
# ratio-quality model accelerates (Calibrate, DriftRecalibration,
# TimeseriesModelVsProbe), all with -benchmem.
#
# Usage:
#   scripts/bench.sh                  # 2s per benchmark, label "current"
#   BENCHTIME=1x scripts/bench.sh     # single-iteration smoke (CI)
#   BENCH_LABEL=baseline scripts/bench.sh   # file results under a label
#   BENCH_OUT=BENCH_PR3.json scripts/bench.sh   # append to an older trajectory
#
# ns/op are machine-dependent: compare labels recorded on the same machine.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2s}"
BENCH_LABEL="${BENCH_LABEL:-current}"
BENCH_OUT="${BENCH_OUT:-BENCH_PR6.json}"
RAW="$(mktemp /tmp/bench.XXXXXX.txt)"
trap 'rm -f "$RAW"' EXIT

PATTERN='^(BenchmarkSZCompress|BenchmarkSZDecompress|BenchmarkZFPCompress|BenchmarkZFPDecompress|BenchmarkHuffmanEncode|BenchmarkHuffmanDecode|BenchmarkAdaptivePipeline|BenchmarkPipelineStream|BenchmarkCalibrate|BenchmarkDriftRecalibration|BenchmarkTimeseriesModelVsProbe)$'

echo "running hot-path benches (benchtime=${BENCHTIME}) ..." >&2
go test -run='^$' -bench="$PATTERN" -benchtime="$BENCHTIME" -benchmem . | tee "$RAW"

go run ./scripts/benchjson -label "$BENCH_LABEL" -in "$RAW" -out "$BENCH_OUT"
