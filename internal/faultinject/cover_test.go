package faultinject

import (
	"bytes"
	"errors"
	"net"
	"testing"
)

func TestTornWriterWithin(t *testing.T) {
	p := NewPlan(3)
	var buf bytes.Buffer
	tw := p.TornWriterWithin(&buf, 4, 8)
	if _, err := tw.Write(make([]byte, 64)); !errors.Is(err, ErrInjected) {
		t.Fatalf("oversized write: err = %v, want ErrInjected", err)
	}
	if n := buf.Len(); n < 4 || n >= 8 {
		t.Errorf("tear offset %d outside [4, 8)", n)
	}
	// Degenerate range collapses to a single-offset window.
	buf.Reset()
	tw = p.TornWriterWithin(&buf, 5, 5)
	if _, err := tw.Write(make([]byte, 64)); !errors.Is(err, ErrInjected) {
		t.Fatalf("degenerate-range write: err = %v, want ErrInjected", err)
	}
	if buf.Len() != 5 {
		t.Errorf("degenerate range tore at %d, want 5", buf.Len())
	}
}

func TestPlanStreamsAreSeedDeterministic(t *testing.T) {
	a, b := NewPlan(11), NewPlan(11)
	for i := 0; i < 8; i++ {
		if x, y := a.Intn(1000), b.Intn(1000); x != y {
			t.Fatalf("draw %d: Intn diverged (%d vs %d)", i, x, y)
		}
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d: Float64 diverged (%v vs %v)", i, x, y)
		}
	}
	other := NewPlan(12)
	same := true
	for i := 0; i < 8 && same; i++ {
		same = a.Intn(1000) == other.Intn(1000)
	}
	if same {
		t.Error("different seeds produced the same Intn stream")
	}
}

func TestWrapListenerScriptsPerAccept(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Accept 0 is healthy (zero faults → the bare conn passes through);
	// accept 1 resets after 4 bytes.
	wl := WrapListener(ln, func(accept int) ConnFaults {
		if accept == 0 {
			return ConnFaults{}
		}
		return ConnFaults{ResetAfterBytes: 4}
	})

	serve := func() (net.Conn, error) { return wl.Accept() }

	c1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	s1, err := serve()
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	if _, ok := s1.(*Conn); ok {
		t.Error("healthy accept returned a fault-wrapped conn")
	}
	if _, err := s1.Write(make([]byte, 64)); err != nil {
		t.Fatalf("healthy conn write: %v", err)
	}

	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	s2, err := serve()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.(*Conn); !ok {
		t.Fatal("faulted accept did not wrap the conn")
	}
	if _, err := s2.Write(make([]byte, 3)); err != nil {
		t.Fatalf("pre-reset write: %v", err)
	}
	if _, err := s2.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-reset write: err = %v, want ErrInjected", err)
	}
}
