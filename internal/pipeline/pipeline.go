// Package pipeline streams a running simulation through the adaptive
// compressor. It is the time dimension of the paper's in situ story
// (Sec. 3.6): the rate-quality model is calibrated once per field on the
// first timestep and *reused* across the run — Fig. 10b shows the rate
// curves are consistent over time — while a cheap per-step drift monitor
// (the global mean feature, the same quantity the in situ protocol already
// gathers with one Allreduce) triggers recalibration only when the data
// distribution actually moves.
//
// Typical use:
//
//	drv, _ := pipeline.New(core.Config{PartitionDim: 16}, pipeline.Options{
//		RelAvgEB: 0.1, Policy: pipeline.DriftTriggered, DriftThreshold: 0.25,
//	})
//	stream, _ := nyx.NewStream(nyx.StreamParams{Base: nyx.Params{N: 64, Seed: 7}, Steps: 16})
//	stats, _ := drv.Run(ctx, stream)
//
// Each step's compressed fields can be appended to an archive v3 stream
// (core.StreamWriter) for O(1) post-hoc access to any timestep.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/apierr"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Policy selects when the rate model is (re)fitted during a run.
type Policy int

const (
	// DriftTriggered recalibrates a field only when its global mean
	// feature has moved more than DriftThreshold (relative) away from the
	// anchor it was last calibrated at. Default, and the paper-faithful
	// mode: calibration is amortized across the run but cannot go stale.
	DriftTriggered Policy = iota
	// CalibrateOnce fits on the first step only (Fig. 10b's assumption
	// taken at face value).
	CalibrateOnce
	// CalibrateEveryStep re-fits on every step — the per-snapshot cost the
	// streaming design exists to avoid; kept as the quality reference.
	CalibrateEveryStep
)

func (p Policy) String() string {
	switch p {
	case DriftTriggered:
		return "drift-triggered"
	case CalibrateOnce:
		return "calibrate-once"
	case CalibrateEveryStep:
		return "calibrate-every-step"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Options configures a Driver.
type Options struct {
	// Policy selects the recalibration schedule (default DriftTriggered).
	Policy Policy
	// DriftThreshold is the relative drift of the global mean feature that
	// triggers recalibration under DriftTriggered. The zero value selects
	// the default (0.25) — it does NOT mean "recalibrate on any movement";
	// for that, use CalibrateEveryStep or a tiny positive threshold.
	DriftThreshold float64
	// RelAvgEB sets each field's quality budget relative to its global
	// mean |value| at first calibration (default 0.1). The budget is
	// resolved once and then held fixed for the whole run, so different
	// recalibration policies compress against identical budgets.
	RelAvgEB float64
	// AvgEBs overrides the budget with an absolute average error bound for
	// specific fields (keys are field names).
	AvgEBs map[string]float64
	// FieldWorkers bounds how many fields are processed concurrently per
	// step (default: min(#fields, GOMAXPROCS)). Partition-level
	// parallelism inside each field is governed by the engine config.
	FieldWorkers int
	// ModelGuardBand bounds the smoothed |ln(observed/predicted)| bit-rate
	// residual the driver tracks per field (EWMA over steps). While the
	// residual stays inside the band, a drift event under DriftTriggered is
	// absorbed by an O(1) rate-model rescale (exp of the EWMA) instead of a
	// full recalibration; a breach schedules a real recalibration at the
	// next drift event. The zero value selects the default (0.25); negative
	// disables corrections entirely — every drift event rescans, the
	// pre-model behavior.
	ModelGuardBand float64
	// Calibration tunes the sampling of (re)calibrations.
	Calibration core.CalibrationOptions
	// Writer, when set, receives every step as an archive v3 stream block.
	// The driver does not close it: the caller owns the footer.
	Writer *core.StreamWriter
	// OnStep, when set, observes each step's stats as the run progresses.
	OnStep func(*StepStats)
}

func (o Options) withDefaults() Options {
	if o.DriftThreshold == 0 {
		o.DriftThreshold = 0.25
	}
	if o.RelAvgEB == 0 {
		o.RelAvgEB = 0.1
	}
	if o.ModelGuardBand == 0 {
		o.ModelGuardBand = 0.25
	}
	return o
}

// Online-correction tuning. The EWMA weight favors recent steps without
// chasing single-step noise; the correction budget bounds how long the
// error-bound allocation (which a uniform rescale cannot update) may go
// without a real refit; the drift floor routes genuinely regime-changing
// steps straight to recalibration no matter how small the configured
// threshold is.
const (
	residualAlpha     = 0.3
	maxCorrections    = 3
	extremeDriftFloor = 0.5
)

// Validate checks the options. Rejections wrap apierr.ErrBadConfig.
func (o Options) Validate() error {
	if o.DriftThreshold < 0 {
		return fmt.Errorf("pipeline: %w: drift threshold must be ≥ 0", apierr.ErrBadConfig)
	}
	if o.RelAvgEB <= 0 {
		return fmt.Errorf("pipeline: %w: RelAvgEB must be positive", apierr.ErrBadConfig)
	}
	for name, eb := range o.AvgEBs {
		if eb <= 0 {
			return fmt.Errorf("pipeline: %w: non-positive budget %g for field %q", apierr.ErrBadConfig, eb, name)
		}
	}
	return nil
}

// FieldStats reports one field of one step.
type FieldStats struct {
	Name string
	// Drift is the relative distance of the step's global mean feature
	// from the calibration anchor, measured before any recalibration.
	Drift float64
	// Recalibrated is set when this step re-fitted the field's rate model.
	Recalibrated bool
	// ModelCorrected is set when a drift event was absorbed by an O(1)
	// rate-model rescale instead of a full recalibration.
	ModelCorrected bool
	// ModelResidual is the field's smoothed |ln(observed/predicted)|
	// bit-rate residual after this step — the quantity held against
	// Options.ModelGuardBand.
	ModelResidual float64
	// AvgEB is the field's (fixed) quality budget.
	AvgEB float64
	// Bytes is the compressed payload size.
	Bytes int
	// Cells is the number of field cells.
	Cells int
	// Ratio and BitRate summarize the compression result.
	Ratio, BitRate float64
	// Per-phase wall times for this field's work.
	CalibrateSeconds, PlanSeconds, CompressSeconds float64
}

// StepStats reports one timestep.
type StepStats struct {
	Step int
	// Fields is sorted by field name.
	Fields []FieldStats
	// Recalibrations counts fields that re-fitted this step.
	Recalibrations int
	// ModelCorrections counts fields whose drift was absorbed by an O(1)
	// model rescale this step.
	ModelCorrections int
	Bytes            int64
	Cells            int64
	// Phase seconds are summed across fields (work, not wall: fields run
	// concurrently), so ratios between phases stay meaningful — the
	// Sec. 4.3 overhead story extended to a run.
	CalibrateSeconds, PlanSeconds, CompressSeconds float64
	// WriteSeconds is the archive append (serialized, true wall time).
	WriteSeconds float64
}

// Ratio is the step's aggregate compression ratio vs fp32.
func (s *StepStats) Ratio() float64 {
	if s.Bytes == 0 {
		return 0
	}
	return float64(4*s.Cells) / float64(s.Bytes)
}

// BitRate is the step's aggregate bits per value.
func (s *StepStats) BitRate() float64 {
	if s.Cells == 0 {
		return 0
	}
	return float64(8*s.Bytes) / float64(s.Cells)
}

// CompressMBPerSec is the step's compression throughput in uncompressed
// MB/s of field data — the figure to hold against the in situ timestep
// budget (Sec. 4.3). Phase seconds are summed across concurrently
// compressed fields, so this is per-core work throughput, a lower bound on
// wall-clock throughput.
func (s *StepStats) CompressMBPerSec() float64 {
	if s.CompressSeconds == 0 {
		return 0
	}
	return float64(4*s.Cells) / s.CompressSeconds / 1e6
}

// RunStats aggregates a whole run.
type RunStats struct {
	Steps []StepStats
	// Recalibrations counts field recalibrations over the run, including
	// each field's initial fit on its first step.
	Recalibrations int
	// ModelCorrections counts drift events absorbed by O(1) model rescales
	// over the run.
	ModelCorrections                                             int
	Bytes                                                        int64
	Cells                                                        int64
	CalibrateSeconds, PlanSeconds, CompressSeconds, WriteSeconds float64
}

// Ratio is the run's aggregate compression ratio vs fp32.
func (r *RunStats) Ratio() float64 {
	if r.Bytes == 0 {
		return 0
	}
	return float64(4*r.Cells) / float64(r.Bytes)
}

// BitRate is the run's aggregate bits per value.
func (r *RunStats) BitRate() float64 {
	if r.Cells == 0 {
		return 0
	}
	return float64(8*r.Bytes) / float64(r.Cells)
}

// CompressMBPerSec is the run's compression throughput in uncompressed
// MB/s of field data (per-core work throughput; see
// StepStats.CompressMBPerSec).
func (r *RunStats) CompressMBPerSec() float64 {
	if r.CompressSeconds == 0 {
		return 0
	}
	return float64(4*r.Cells) / r.CompressSeconds / 1e6
}

// StepOptions tunes a single step beyond the driver-wide Options.
type StepOptions struct {
	// BudgetScale multiplies every field's resolved error-bound budget for
	// this step only (0 or 1 = unscaled; must not be negative). The
	// compression service's load controller uses it to step rate targets
	// down under pressure: a larger budget means larger error bounds,
	// fewer bits, and a cheaper batch — and back to 1 when pressure
	// clears. The per-field budget resolved at first calibration is stored
	// unscaled, so scaling is stateless across steps.
	BudgetScale float64
	// BudgetScales overrides BudgetScale for specific fields (keys are the
	// snapshot's field names). The compression service uses it to hold a
	// contract-floored tenant at its quality cap while the rest of the
	// batch runs at the controller's stepped-up scale. Entries must be
	// positive; a field absent from the map follows BudgetScale.
	BudgetScales map[string]float64
}

// StepResult is one compressed snapshot with per-field granularity: the
// compression service batches unrelated tenants' fields into one step, so
// one hostile field must fail alone instead of aborting its batch-mates.
type StepResult struct {
	// Stats is the step's aggregate stats over the fields that succeeded.
	Stats *StepStats
	// Fields holds the compressed output of every field that succeeded.
	Fields map[string]*core.CompressedField
	// Errs maps each failed field to its error. A field absent from both
	// maps was never started (the step was canceled first).
	Errs map[string]error
}

// firstErr returns the first failed field's error in name order (stable
// regardless of completion order), or nil.
func (r *StepResult) firstErr() error {
	if len(r.Errs) == 0 {
		return nil
	}
	names := make([]string, 0, len(r.Errs))
	for name := range r.Errs {
		names = append(names, name)
	}
	sort.Strings(names)
	return fmt.Errorf("pipeline: field %s: %w", names[0], r.Errs[names[0]])
}

// fieldState is the retained per-field calibration state.
type fieldState struct {
	cal *core.Calibration
	// anchor is the global mean feature the model was last fitted (or
	// corrected) at.
	anchor float64
	// avgEB is the budget, resolved at the field's first calibration and
	// fixed thereafter.
	avgEB float64
	// ewma is the smoothed ln(observed/predicted) bit-rate residual;
	// ewmaOK marks it initialized (at least one observation since the last
	// full recalibration).
	ewma   float64
	ewmaOK bool
	// pendingRecal is set when the residual breached the guard band: the
	// next drift event recalibrates for real instead of correcting.
	pendingRecal bool
	// corrections counts O(1) rescales since the last full recalibration.
	corrections int
}

// correctionScale reports whether a drift event can be absorbed by an O(1)
// model rescale and, if so, the multiplicative bit-rate factor (exp of the
// residual EWMA). A correction is refused when the model is on notice
// (guard-band breach), unobserved since its last fit, already at the
// correction budget, or when the drift is extreme — those all need a real
// refit of the allocation shape, which a uniform rescale cannot fix.
func (st *fieldState) correctionScale(drift, threshold float64) (float64, bool) {
	if st.pendingRecal || !st.ewmaOK || st.corrections >= maxCorrections {
		return 0, false
	}
	if drift > math.Max(4*threshold, extremeDriftFloor) {
		return 0, false
	}
	return math.Exp(st.ewma), true
}

// resetModelTracking clears the residual state after a full recalibration.
func (st *fieldState) resetModelTracking() {
	st.ewma, st.ewmaOK, st.pendingRecal, st.corrections = 0, false, false, 0
}

// Driver runs the streaming pipeline. Calibration state persists across
// Run calls, so a driver resumed on a continuation of the same simulation
// keeps its fitted models.
type Driver struct {
	eng *core.Engine
	opt Options

	mu    sync.Mutex
	state map[string]*fieldState
}

// New builds a driver with its own engine.
func New(engCfg core.Config, opt Options) (*Driver, error) {
	eng, err := core.NewEngine(engCfg)
	if err != nil {
		return nil, err
	}
	return NewWithEngine(eng, opt)
}

// NewWithEngine wraps an existing engine (shared scratch pools included).
func NewWithEngine(eng *core.Engine, opt Options) (*Driver, error) {
	opt = opt.withDefaults()
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return &Driver{eng: eng, opt: opt, state: make(map[string]*fieldState)}, nil
}

// Engine returns the driver's engine.
func (d *Driver) Engine() *core.Engine { return d.eng }

// Calibration returns the current calibration for a field, or nil before
// the field's first step.
func (d *Driver) Calibration(name string) *core.Calibration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if st, ok := d.state[name]; ok {
		return st.cal
	}
	return nil
}

// Run consumes the source until io.EOF, compressing every field of every
// step, and returns the per-step stats. On error the run stops and the
// stats collected so far are returned alongside it.
//
// Cancellation: ctx is checked between steps and, inside each step, between
// partitions — a cancel mid-run surfaces as an error satisfying
// errors.Is(err, context.Canceled) within one step, and the configured
// archive writer never sees a partial step, so Close()-ing it still yields
// a valid (truncated) v3 stream covering every completed step.
func (d *Driver) Run(ctx context.Context, src Source) (*RunStats, error) {
	run := &RunStats{}
	for {
		if err := ctx.Err(); err != nil {
			return run, fmt.Errorf("pipeline: run canceled after %d steps: %w", len(run.Steps), err)
		}
		snap, err := src.Next()
		if err == io.EOF {
			return run, nil
		}
		if err != nil {
			return run, fmt.Errorf("pipeline: source: %w", err)
		}
		st, err := d.Step(ctx, snap)
		if err != nil {
			return run, err
		}
		st.Step = len(run.Steps)
		run.Steps = append(run.Steps, *st)
		run.Recalibrations += st.Recalibrations
		run.ModelCorrections += st.ModelCorrections
		run.Bytes += st.Bytes
		run.Cells += st.Cells
		run.CalibrateSeconds += st.CalibrateSeconds
		run.PlanSeconds += st.PlanSeconds
		run.CompressSeconds += st.CompressSeconds
		run.WriteSeconds += st.WriteSeconds
		if d.opt.OnStep != nil {
			d.opt.OnStep(&run.Steps[len(run.Steps)-1])
		}
	}
}

// Step compresses one snapshot's fields (concurrently, bounded by
// FieldWorkers), updates the calibration state, and appends the step to
// the archive writer when one is configured. Any field failing fails the
// whole step; use StepCompressed for per-field error granularity.
func (d *Driver) Step(ctx context.Context, snap map[string]*grid.Field3D) (*StepStats, error) {
	res, err := d.StepCompressed(ctx, snap, StepOptions{})
	if res != nil {
		// A concrete field failure beats the generic cancellation error —
		// it carries the cause (which itself satisfies errors.Is on
		// context.Canceled when the cancel is what failed the field).
		if ferr := res.firstErr(); ferr != nil {
			return nil, ferr
		}
	}
	if err != nil {
		// No partial step ever reaches the archive writer: a canceled step
		// is dropped whole, so the stream stays valid at step granularity.
		return nil, err
	}
	st := res.Stats
	if d.opt.Writer != nil {
		t0 := time.Now()
		if err := d.opt.Writer.WriteStep(res.Fields); err != nil {
			return nil, err
		}
		st.WriteSeconds = time.Since(t0).Seconds()
	}
	return st, nil
}

// StepCompressed compresses one snapshot's fields like Step but returns
// the compressed fields to the caller (nothing is written to the
// configured archive writer) and isolates failures per field: each field
// lands in StepResult.Fields or StepResult.Errs independently, so batches
// that coalesce unrelated requests — the compression service's shared
// pipeline batches — contain a failure to the request that caused it. The
// returned error is non-nil only when the snapshot is empty or the step
// was canceled; per-field errors never populate it.
func (d *Driver) StepCompressed(ctx context.Context, snap map[string]*grid.Field3D, opt StepOptions) (*StepResult, error) {
	if len(snap) == 0 {
		return nil, fmt.Errorf("pipeline: %w: empty snapshot", apierr.ErrBadConfig)
	}
	scale := opt.BudgetScale
	if scale == 0 {
		scale = 1
	}
	if scale < 0 {
		return nil, fmt.Errorf("pipeline: %w: negative budget scale %g", apierr.ErrBadConfig, scale)
	}
	for name, sc := range opt.BudgetScales {
		if sc <= 0 {
			return nil, fmt.Errorf("pipeline: %w: non-positive budget scale %g for field %q", apierr.ErrBadConfig, sc, name)
		}
	}
	scaleFor := func(name string) float64 {
		if sc, ok := opt.BudgetScales[name]; ok {
			return sc
		}
		return scale
	}
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)

	workers := d.opt.FieldWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}

	st := &StepStats{Fields: make([]FieldStats, len(names))}
	res := &StepResult{
		Stats:  st,
		Fields: make(map[string]*core.CompressedField, len(names)),
		Errs:   make(map[string]error),
	}
	var mu sync.Mutex // guards res
	// Fields fan out over the shared worker pool (bounded by FieldWorkers
	// and, transitively, GOMAXPROCS): the partition- and block-level
	// fan-outs below draw from the same pool, so a nested run cannot
	// oversubscribe to FieldWorkers × engine workers goroutines.
	parallel.ForEachCtx(ctx, len(names), workers, func(i int) {
		name := names[i]
		cf, fs, err := d.compressFieldIsolated(ctx, name, snap[name], scaleFor(name))
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			res.Errs[name] = err
			st.Fields[i] = FieldStats{Name: name}
			return
		}
		st.Fields[i] = *fs
		res.Fields[name] = cf
	})
	for i := range st.Fields {
		fs := &st.Fields[i]
		st.Bytes += int64(fs.Bytes)
		st.Cells += int64(fs.Cells)
		st.CalibrateSeconds += fs.CalibrateSeconds
		st.PlanSeconds += fs.PlanSeconds
		st.CompressSeconds += fs.CompressSeconds
		if fs.Recalibrated {
			st.Recalibrations++
		}
		if fs.ModelCorrected {
			st.ModelCorrections++
		}
	}
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("pipeline: step canceled: %w", err)
	}
	return res, nil
}

// tagRefitFailure wraps a mid-run recalibration failure in the typed
// drift error so callers can tell a stream that went bad (drift refit
// failed) from a run that never calibrated at all — except when the
// "failure" is just the run's own cancellation surfacing inside
// Calibrate: a clean shutdown must classify as context.Canceled only,
// never as ErrDriftRecalibration.
func tagRefitFailure(name string, drift float64, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return &apierr.DriftRecalibrationError{Field: name, Drift: drift, Err: err}
}

// compressFieldIsolated is compressField behind a panic barrier: one
// field's panic (a codec bug detonating on one tenant's data) becomes that
// field's error, exactly like any other per-field failure — its
// batch-mates in the same step never notice. The barrier sits here, at the
// worker-pool boundary, because an unrecovered panic in a pool worker
// would kill the whole process, not just the step. compressField's mutex
// sections are short arithmetic and map updates that cannot themselves
// panic; the compute stages (Features, Calibrate, CompressAdaptive) run
// without the lock, so recovery never strands d.mu.
func (d *Driver) compressFieldIsolated(ctx context.Context, name string, f *grid.Field3D, budgetScale float64) (cf *core.CompressedField, fs *FieldStats, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		cf, fs = nil, nil
		// An error panic value (parallel.PanicError funneling a worker
		// panic, faultinject's scheduled panics) stays in the unwrap chain
		// so chaos tests can classify what detonated.
		if perr, ok := r.(error); ok {
			err = fmt.Errorf("pipeline: field %s: panic during compression: %w", name, perr)
		} else {
			err = fmt.Errorf("pipeline: field %s: panic during compression: %v", name, r)
		}
	}()
	return d.compressField(ctx, name, f, budgetScale)
}

// compressField runs one field through feature extraction, the drift
// check, (re)calibration when due, planning, and compression. budgetScale
// multiplies the field's resolved budget for this step only (see
// StepOptions.BudgetScale); the stored per-field budget stays unscaled.
func (d *Driver) compressField(ctx context.Context, name string, f *grid.Field3D, budgetScale float64) (*core.CompressedField, *FieldStats, error) {
	fs := &FieldStats{Name: name, Cells: f.Len()}

	t0 := time.Now()
	features, err := d.eng.Features(ctx, f)
	if err != nil {
		return nil, nil, err
	}
	mean := stats.MeanOf(features)
	fs.PlanSeconds += time.Since(t0).Seconds()

	d.mu.Lock()
	state := d.state[name]
	if state == nil {
		state = &fieldState{}
		d.state[name] = state
	}
	cal, anchor := state.cal, state.anchor
	d.mu.Unlock()

	if cal != nil && anchor > 0 {
		fs.Drift = math.Abs(mean-anchor) / anchor
	}
	recal := cal == nil
	switch d.opt.Policy {
	case CalibrateEveryStep:
		recal = true
	case DriftTriggered:
		recal = recal || fs.Drift > d.opt.DriftThreshold
	}
	if recal && cal != nil && d.opt.Policy == DriftTriggered && d.opt.ModelGuardBand >= 0 {
		// Drift event with a healthy model: absorb it with an O(1) rescale
		// of the rate model instead of paying for a rescan.
		d.mu.Lock()
		if scale, ok := state.correctionScale(fs.Drift, d.opt.DriftThreshold); ok {
			cal = cal.Rescaled(scale)
			state.cal, state.anchor = cal, mean
			state.corrections++
			state.ewma = 0 // the rescale consumed the accumulated residual
			anchor = mean
			recal = false
			fs.ModelCorrected = true
		}
		d.mu.Unlock()
	}
	if recal {
		refit := cal != nil // a re-fit, not the field's first calibration
		t1 := time.Now()
		cal, err = d.eng.Calibrate(ctx, f, d.opt.Calibration)
		if err != nil {
			if refit {
				err = tagRefitFailure(name, fs.Drift, err)
			}
			return nil, nil, err
		}
		fs.CalibrateSeconds = time.Since(t1).Seconds()
		fs.Recalibrated = true
		anchor = mean
	}

	d.mu.Lock()
	if recal {
		state.cal, state.anchor = cal, anchor
		state.resetModelTracking()
	}
	if state.avgEB == 0 {
		if eb, ok := d.opt.AvgEBs[name]; ok {
			state.avgEB = eb
		} else {
			state.avgEB = d.opt.RelAvgEB * mean
		}
	}
	fs.AvgEB = state.avgEB * budgetScale
	d.mu.Unlock()
	if fs.AvgEB <= 0 {
		return nil, nil, fmt.Errorf("pipeline: field %s resolved a non-positive budget (mean |value| %g)", name, mean)
	}

	t2 := time.Now()
	plan, err := d.eng.PlanFromFeatures(features, cal, core.PlanOptions{AvgEB: fs.AvgEB})
	if err != nil {
		return nil, nil, err
	}
	fs.PlanSeconds += time.Since(t2).Seconds()

	t3 := time.Now()
	cf, err := d.eng.CompressAdaptive(ctx, f, plan)
	if err != nil {
		return nil, nil, err
	}
	fs.CompressSeconds = time.Since(t3).Seconds()
	fs.Bytes = cf.CompressedSize()
	fs.Ratio = cf.Ratio()
	fs.BitRate = cf.BitRate()

	// Fold the step's observed bit rate into the residual EWMA — the free
	// online check that keeps O(1) corrections honest: while predictions
	// track observations the model may rescale through drift; once they
	// diverge past the guard band the next drift event rescans.
	if pred := plan.Predicted.PredictedBitRate; pred > 0 && fs.BitRate > 0 {
		r := math.Log(fs.BitRate / pred)
		d.mu.Lock()
		if state.ewmaOK {
			state.ewma = (1-residualAlpha)*state.ewma + residualAlpha*r
		} else {
			state.ewma, state.ewmaOK = r, true
		}
		if gb := d.opt.ModelGuardBand; gb >= 0 && math.Abs(state.ewma) > math.Log(1+gb) {
			state.pendingRecal = true
		}
		fs.ModelResidual = math.Abs(state.ewma)
		d.mu.Unlock()
	}
	return cf, fs, nil
}
