package codec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry maps codec IDs to backends. The zero value is not usable; build
// one with NewRegistry. Most callers use the package-level Default registry,
// which ships with the sz and zfp adapters pre-registered; a private
// registry is useful for tests and for embedding the engine with a custom
// backend set.
type Registry struct {
	mu     sync.RWMutex
	codecs map[ID]Codec
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{codecs: make(map[ID]Codec)}
}

// Register adds a codec under its own ID. Registering a nil codec, an empty
// ID, or a duplicate ID is an error.
func (r *Registry) Register(c Codec) error {
	if c == nil {
		return fmt.Errorf("codec: register nil codec")
	}
	id := c.ID()
	if id == "" {
		return fmt.Errorf("codec: register codec with empty ID")
	}
	if len(id) > maxIDLen {
		// The frame envelope stores the ID length in one byte (≤ maxIDLen);
		// rejecting here keeps every registered codec archivable.
		return fmt.Errorf("codec: ID %q longer than %d bytes", id, maxIDLen)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.codecs[id]; dup {
		return fmt.Errorf("codec: %q already registered", id)
	}
	r.codecs[id] = c
	return nil
}

// mustRegister is Register for the package's own init-time registrations.
func (r *Registry) mustRegister(c Codec) {
	if err := r.Register(c); err != nil {
		panic(err)
	}
}

// Lookup resolves an ID to its codec. The error names the unknown ID and
// lists what is registered, so a typo in a -codec flag or a foreign frame
// header produces an actionable message.
func (r *Registry) Lookup(id ID) (Codec, error) {
	r.mu.RLock()
	c, ok := r.codecs[id]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("codec: %w %q (registered: %s)", ErrUnknownCodec, id, r.idList())
	}
	return c, nil
}

// IDs returns the registered codec IDs in sorted order.
func (r *Registry) IDs() []ID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ID, 0, len(r.codecs))
	for id := range r.codecs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (r *Registry) idList() string {
	ids := r.IDs()
	if len(ids) == 0 {
		return "none"
	}
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = string(id)
	}
	return strings.Join(names, ", ")
}

// Default is the registry the engine and CLI resolve codecs from.
var Default = NewRegistry()

func init() {
	Default.mustRegister(szCodec{})
	Default.mustRegister(zfpCodec{})
}

// Register adds a codec to the Default registry.
func Register(c Codec) error { return Default.Register(c) }

// Lookup resolves an ID in the Default registry.
func Lookup(id ID) (Codec, error) { return Default.Lookup(id) }

// IDs lists the Default registry's codecs in sorted order.
func IDs() []ID { return Default.IDs() }
