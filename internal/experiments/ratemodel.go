package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/nyx"
	"repro/internal/stats"
)

// Fig09BitrateCurves reproduces Fig. 9: per-partition bit-rate vs
// error-bound curves (16 sampled partitions) are power laws sharing one
// exponent.
func Fig09BitrateCurves(ctx *Context) (*Result, error) {
	cal, err := ctx.Calibration(nyx.FieldTemperature)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fig09",
		Title: "Bit rate vs error bound per partition (temperature)",
		Cols:  []string{"partition_feature", "fitted_C", "fitted_c", "r2"},
	}
	var exps []float64
	for _, cu := range cal.Curves {
		coeff, exp, r2, err := stats.PowerLawFit(cu.EBs, cu.BitRates)
		if err != nil {
			continue
		}
		exps = append(exps, exp)
		res.AddRow(fnum(cu.Feature), fnum(coeff), fnum(exp), fnum(r2))
	}
	var m stats.Moments
	for _, e := range exps {
		m.Add(e)
	}
	res.Notef("per-curve exponents: mean %.3f, sd %.3f — a shared exponent is justified (paper: 'different partitions ... share the same power parameter c')",
		m.Mean(), m.StdDev())
	res.Notef("calibrated shared exponent: %.3f", cal.Model.Exponent)
	return res, nil
}

// Fig10aCmPrediction reproduces Fig. 10a: C_m predicted from the partition
// mean against the exact per-partition coefficient.
func Fig10aCmPrediction(ctx *Context) (*Result, error) {
	cal, err := ctx.Calibration(nyx.FieldTemperature)
	if err != nil {
		return nil, err
	}
	exact := cal.Model.ExactCms(cal.Curves)
	res := &Result{
		ID:    "fig10a",
		Title: "Predicted C_m (from partition mean) vs exact C_m",
		Cols:  []string{"feature", "exact_C", "predicted_C", "rel_err"},
	}
	var relErr stats.Moments
	for i, cu := range cal.Curves {
		if exact[i] <= 0 {
			continue
		}
		pred := cal.Model.Cm(cu.Feature)
		re := math.Abs(pred-exact[i]) / exact[i]
		relErr.Add(re)
		res.AddRow(fnum(cu.Feature), fnum(exact[i]), fnum(pred), fnum(re))
	}
	res.Notef("mean relative error %.1f%%, fit R² %.3f (paper: 'highly precise')",
		relErr.Mean()*100, cal.Model.FitR2)
	return res, nil
}

// Fig10bRatioConsistency reproduces Fig. 10b: the same configuration yields
// consistent compression ratios on snapshots from different epochs.
func Fig10bRatioConsistency(ctx *Context) (*Result, error) {
	sA, err := ctx.Snapshot(ctx.Cfg.Redshift)
	if err != nil {
		return nil, err
	}
	sB, err := ctx.Snapshot(ctx.Cfg.Redshift + 6) // earlier epoch
	if err != nil {
		return nil, err
	}
	fA, err := sA.Field(nyx.FieldTemperature)
	if err != nil {
		return nil, err
	}
	fB, err := sB.Field(nyx.FieldTemperature)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    "fig10b",
		Title: "Compression-ratio consistency across snapshots (temperature)",
		Cols:  []string{"eb", fmt.Sprintf("ratio_z%.0f", ctx.Cfg.Redshift), fmt.Sprintf("ratio_z%.0f", ctx.Cfg.Redshift+6), "rel_diff"},
	}
	worst := 0.0
	for _, rel := range []float64{3e-4, 1e-3, 3e-3, 1e-2} {
		eb := rel * fA.AbsMax()
		cfA, err := ctx.Engine.CompressStatic(context.Background(), fA, eb)
		if err != nil {
			return nil, err
		}
		cfB, err := ctx.Engine.CompressStatic(context.Background(), fB, eb)
		if err != nil {
			return nil, err
		}
		d := math.Abs(cfA.Ratio()-cfB.Ratio()) / cfA.Ratio()
		if d > worst {
			worst = d
		}
		res.AddRow(fnum(eb), fnum(cfA.Ratio()), fnum(cfB.Ratio()), fnum(d))
	}
	res.Notef("worst cross-snapshot ratio difference %.1f%% (paper: 'SZ provides consistent bit-rate to error-bound curves')", worst*100)
	return res, nil
}

// Fig14EffectiveCellHistogram reproduces Fig. 14: the per-partition count
// of effective (boundary) cells is widely dispersed, which is what gives
// the halo-aware allocation room to trade.
func Fig14EffectiveCellHistogram(ctx *Context) (*Result, error) {
	f, err := ctx.Field(nyx.FieldBaryonDensity)
	if err != nil {
		return nil, err
	}
	cfg := ctx.HaloConfig()
	p, err := ctx.Partitioner()
	if err != nil {
		return nil, err
	}
	fts := grid.ExtractFeatures(f, p, grid.FeatureOptions{
		HaloThreshold: cfg.BoundaryThreshold, RefEB: 1.0, Workers: ctx.Cfg.Workers,
	})
	// Log-spaced occupancy histogram.
	buckets := []int{0, 1, 3, 10, 30, 100, 300, 1000, 1 << 30}
	counts := make([]int, len(buckets)-1)
	nonzero := 0
	var mom stats.Moments
	for _, ft := range fts {
		n := ft.BoundaryCells
		mom.Add(float64(n))
		if n > 0 {
			nonzero++
		}
		for b := 0; b < len(buckets)-1; b++ {
			if n >= buckets[b] && n < buckets[b+1] {
				counts[b]++
				break
			}
		}
	}
	res := &Result{
		ID:    "fig14",
		Title: "Histogram of effective (boundary) cells per partition",
		Cols:  []string{"cells_in_partition", "partitions"},
	}
	labels := []string{"0", "1-2", "3-9", "10-29", "30-99", "100-299", "300-999", "1000+"}
	for i, c := range counts {
		res.AddRow(labels[i], fmt.Sprint(c))
	}
	res.Notef("%d of %d partitions contain boundary cells; mean %.1f, max %.0f — a dispersed histogram means feature budget can be traded between partitions (paper Fig. 14)",
		nonzero, len(fts), mom.Mean(), mom.Max())
	return res, nil
}
