package archiveserve

import (
	"fmt"

	"repro/internal/apierr"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/zfp"
)

// SpliceArchive derives the rate-R form of a stored v2 ZFP field archive
// locally: every partition's embedded stream is truncated to the rate's
// bit budget and the archive envelope is rebuilt around the prefixes.
// This is the same computation the archive server runs for ?rate=R — a
// served response and SpliceArchive over the stored bytes are
// byte-identical, which is what lets a client (or the CI smoke gate)
// verify a server without trusting it.
func SpliceArchive(data []byte, rate float64) ([]byte, error) {
	cf, err := core.ParseCompressedField(data)
	if err != nil {
		return nil, err
	}
	out := &core.CompressedField{
		Nx: cf.Nx, Ny: cf.Ny, Nz: cf.Nz,
		PartitionDim: cf.PartitionDim,
		Codec:        codec.ZFP,
		Parts:        make([]codec.Frame, 0, len(cf.Parts)),
	}
	var s zfp.Scratch
	for i, part := range cf.Parts {
		if part.CodecID() != codec.ZFP {
			return nil, fmt.Errorf("archiveserve: %w: partition %d is %q, rate slicing is a zfp property",
				apierr.ErrBadConfig, i, part.CodecID())
		}
		c, err := zfp.Parse(part.Bytes())
		if err != nil {
			return nil, err
		}
		ix, err := zfp.Reindex(c)
		if err != nil {
			return nil, err
		}
		tc, err := ix.TruncateToRate(rate, &s)
		if err != nil {
			return nil, err
		}
		out.Parts = append(out.Parts, codec.WrapZFP(tc))
	}
	return out.Bytes(), nil
}
