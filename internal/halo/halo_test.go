package halo

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/stats"
)

// blob paints a cubic over-density of the given value into f.
func blob(f *grid.Field3D, cx, cy, cz, r int, v float32) {
	for z := cz - r; z <= cz+r; z++ {
		for y := cy - r; y <= cy+r; y++ {
			for x := cx - r; x <= cx+r; x++ {
				xi := (x%f.Nx + f.Nx) % f.Nx
				yi := (y%f.Ny + f.Ny) % f.Ny
				zi := (z%f.Nz + f.Nz) % f.Nz
				f.Set(xi, yi, zi, v)
			}
		}
	}
}

func baseCfg() Config {
	return Config{BoundaryThreshold: 10, HaloThreshold: 50, Periodic: true}
}

func TestFindTwoBlobs(t *testing.T) {
	f := grid.NewCube(32)
	f.Fill(1)
	blob(f, 8, 8, 8, 2, 100)   // 5³ = 125 cells
	blob(f, 24, 24, 24, 1, 80) // 3³ = 27 cells
	cat, err := Find(f, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if cat.Count() != 2 {
		t.Fatalf("found %d halos, want 2", cat.Count())
	}
	// Sorted by mass: the big blob first.
	if cat.Halos[0].Cells != 125 || cat.Halos[1].Cells != 27 {
		t.Errorf("cells = %d, %d; want 125, 27", cat.Halos[0].Cells, cat.Halos[1].Cells)
	}
	if math.Abs(cat.Halos[0].X-8) > 1e-9 || math.Abs(cat.Halos[0].Y-8) > 1e-9 {
		t.Errorf("big halo centroid (%v,%v,%v)", cat.Halos[0].X, cat.Halos[0].Y, cat.Halos[0].Z)
	}
	if math.Abs(cat.Halos[0].Mass-12500) > 1e-6 {
		t.Errorf("big halo mass %v, want 12500", cat.Halos[0].Mass)
	}
	if cat.Halos[0].Peak != 100 {
		t.Errorf("peak %v", cat.Halos[0].Peak)
	}
	if cat.Candidates != 125+27 {
		t.Errorf("candidates %d, want %d", cat.Candidates, 125+27)
	}
	if cat.Halos[0].ID != 0 || cat.Halos[1].ID != 1 {
		t.Error("IDs not assigned in sort order")
	}
}

func TestGroupBelowHaloThresholdDropped(t *testing.T) {
	f := grid.NewCube(16)
	blob(f, 8, 8, 8, 1, 20) // above boundary (10) but below halo cut (50)
	cat, err := Find(f, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if cat.Count() != 0 {
		t.Fatalf("sub-threshold group became a halo")
	}
	if cat.Candidates != 27 {
		t.Errorf("candidates %d, want 27", cat.Candidates)
	}
}

func TestMinCells(t *testing.T) {
	f := grid.NewCube(16)
	blob(f, 4, 4, 4, 0, 100) // single cell
	blob(f, 12, 12, 12, 1, 100)
	cfg := baseCfg()
	cfg.MinCells = 5
	cat, err := Find(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Count() != 1 || cat.Halos[0].Cells != 27 {
		t.Fatalf("MinCells filter failed: %+v", cat.Halos)
	}
}

func TestPeriodicWrapJoinsComponents(t *testing.T) {
	// A blob straddling the box face must be a single halo when periodic
	// and two when not.
	f := grid.NewCube(16)
	blob(f, 0, 8, 8, 1, 100) // wraps across x=0
	cfgP := baseCfg()
	catP, err := Find(f, cfgP)
	if err != nil {
		t.Fatal(err)
	}
	if catP.Count() != 1 {
		t.Fatalf("periodic: %d halos, want 1", catP.Count())
	}
	// Centroid should sit near the face (x ≈ 0 mod 16).
	x := catP.Halos[0].X
	if !(x < 1 || x > 15) {
		t.Errorf("periodic centroid x = %v, want near 0", x)
	}
	cfgNP := baseCfg()
	cfgNP.Periodic = false
	catNP, err := Find(f, cfgNP)
	if err != nil {
		t.Fatal(err)
	}
	if catNP.Count() != 2 {
		t.Fatalf("non-periodic: %d halos, want 2", catNP.Count())
	}
}

func TestDiagonalNotConnected(t *testing.T) {
	// 6-connectivity: two cells sharing only a corner are separate groups.
	f := grid.NewCube(8)
	f.Set(2, 2, 2, 100)
	f.Set(3, 3, 3, 100)
	cat, err := Find(f, baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if cat.Count() != 2 {
		t.Fatalf("diagonal cells merged: %d halos", cat.Count())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{BoundaryThreshold: 0, HaloThreshold: 1},
		{BoundaryThreshold: -1, HaloThreshold: 1},
		{BoundaryThreshold: 10, HaloThreshold: 5},
		{BoundaryThreshold: 1, HaloThreshold: 2, MinCells: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
	if _, err := Find(grid.NewCube(4), Config{}); err == nil {
		t.Error("Find accepted zero config")
	}
}

func TestCandidateCount(t *testing.T) {
	f := grid.NewCube(4)
	f.Data[0] = 10
	f.Data[1] = 9.999
	if n := CandidateCount(f, 10); n != 1 {
		t.Errorf("CandidateCount = %d", n)
	}
}

func TestMatchIdentity(t *testing.T) {
	f := grid.NewCube(32)
	f.Fill(1)
	blob(f, 8, 8, 8, 2, 100)
	blob(f, 20, 20, 20, 1, 80)
	cat, _ := Find(f, baseCfg())
	res := Match(cat, cat, 2.0, 32, 32, 32)
	if res.Matched != 2 || res.Lost != 0 || res.Spurious != 0 {
		t.Fatalf("self-match: %+v", res)
	}
	if res.MassRatioRMSE != 0 || res.PositionRMSE != 0 || res.TotalAbsMassDiff != 0 {
		t.Errorf("self-match nonzero errors: %+v", res)
	}
}

func TestMatchPerturbed(t *testing.T) {
	f := grid.NewCube(32)
	f.Fill(1)
	blob(f, 8, 8, 8, 2, 100)
	blob(f, 20, 20, 20, 1, 80)
	orig, _ := Find(f, baseCfg())

	// Perturb: grow the small blob by one face cell.
	g := f.Clone()
	g.Set(20, 20, 22, 60)
	recon, _ := Find(g, baseCfg())
	res := Match(orig, recon, 2.0, 32, 32, 32)
	if res.Matched != 2 {
		t.Fatalf("matched %d", res.Matched)
	}
	if res.CellDiff != 1 {
		t.Errorf("cell diff %d, want 1", res.CellDiff)
	}
	if res.TotalAbsMassDiff != 60 {
		t.Errorf("mass diff %v, want 60", res.TotalAbsMassDiff)
	}
	if res.MassRatioRMSE <= 0 {
		t.Error("zero mass RMSE after perturbation")
	}
}

func TestMatchLostAndSpurious(t *testing.T) {
	f := grid.NewCube(32)
	blob(f, 8, 8, 8, 1, 100)
	orig, _ := Find(f, baseCfg())

	g := grid.NewCube(32)
	blob(g, 24, 24, 24, 1, 100) // different location entirely
	recon, _ := Find(g, baseCfg())
	res := Match(orig, recon, 3.0, 32, 32, 32)
	if res.Matched != 0 || res.Lost != 1 || res.Spurious != 1 {
		t.Fatalf("expected total mismatch, got %+v", res)
	}
}

func TestMatchPeriodicDistance(t *testing.T) {
	// Halos at opposite faces are neighbours under the periodic metric.
	a := &Catalog{Halos: []Halo{{Mass: 10, X: 0.4, Y: 8, Z: 8}}}
	b := &Catalog{Halos: []Halo{{Mass: 10, X: 15.6, Y: 8, Z: 8}}}
	res := Match(a, b, 1.0, 16, 16, 16)
	if res.Matched != 1 {
		t.Fatalf("periodic wrap match failed: %+v", res)
	}
}

func TestMassHistogram(t *testing.T) {
	c := &Catalog{Halos: []Halo{
		{Mass: 10}, {Mass: 100}, {Mass: 1000}, {Mass: 1050}, {Mass: 10000},
	}}
	edges, counts := MassHistogram(c, 4)
	if len(edges) != 5 || len(counts) != 4 {
		t.Fatalf("edges %d, counts %d", len(edges), len(counts))
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 5 {
		t.Errorf("histogram lost halos: %d", total)
	}
	if edges[0] > 10 || edges[4] < 10000 {
		t.Errorf("edges do not span masses: %v", edges)
	}
	if e, c2 := MassHistogram(&Catalog{}, 4); e != nil || c2 != nil {
		t.Error("empty catalog should yield nil histogram")
	}
}

func TestLargestN(t *testing.T) {
	c := &Catalog{Halos: []Halo{{Mass: 100}, {Mass: 50}, {Mass: 10}}}
	top := c.LargestN(2)
	if len(top) != 2 || top[0].Mass != 100 || top[1].Mass != 50 {
		t.Fatalf("LargestN: %+v", top)
	}
	if got := c.LargestN(10); len(got) != 3 {
		t.Errorf("LargestN over-count: %d", len(got))
	}
}

func TestTotalMassAndMassesAbove(t *testing.T) {
	c := &Catalog{Halos: []Halo{{Mass: 100}, {Mass: 50}, {Mass: 10}}}
	if c.TotalMass() != 160 {
		t.Errorf("TotalMass %v", c.TotalMass())
	}
	if got := c.MassesAbove(50); len(got) != 2 {
		t.Errorf("MassesAbove: %d", len(got))
	}
}

// Property: candidate count equals the sum of cells over all groups (halo
// or not) — i.e. the finder never loses or duplicates candidate cells.
// We verify via halo cells ≤ candidates, and with halo threshold equal to
// boundary threshold, halo cells == candidates.
func TestQuickCellConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		fld := grid.NewCube(12)
		for i := range fld.Data {
			if r.Float64() < 0.2 {
				fld.Data[i] = float32(r.Uniform(10, 200))
			}
		}
		cfg := Config{BoundaryThreshold: 10, HaloThreshold: 10, Periodic: true}
		cat, err := Find(fld, cfg)
		if err != nil {
			return false
		}
		sum := 0
		for _, h := range cat.Halos {
			sum += h.Cells
		}
		return sum == cat.Candidates
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: halo masses are positive and catalog is sorted descending.
func TestQuickCatalogInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		fld := grid.NewCube(10)
		for i := range fld.Data {
			fld.Data[i] = float32(math.Abs(r.NormFloat64()) * 40)
		}
		cat, err := Find(fld, Config{BoundaryThreshold: 20, HaloThreshold: 60, Periodic: true})
		if err != nil {
			return false
		}
		prev := math.Inf(1)
		for _, h := range cat.Halos {
			if h.Mass <= 0 || h.Cells <= 0 || h.Peak < 60 {
				return false
			}
			if h.Mass > prev {
				return false
			}
			prev = h.Mass
			if h.X < 0 || h.X >= 10 || h.Y < 0 || h.Y >= 10 || h.Z < 0 || h.Z >= 10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
