// Command archived serves archived simulation streams progressively: one
// max-rate v3 stream per snapshot on disk, any lower rate synthesized per
// request by bit-prefix splicing (never recompression), with a
// byte-budgeted representation cache, strong ETags for CDN revalidation,
// and HTTP Range support. SZ fields are served as decode-side coarsened
// previews.
//
// Usage:
//
//	archived -dir store/ [-addr :8324] [-cache-mb 256]
//
//	archived -gen -dir store/ -stream demo [-steps 3] [-dim 32] \
//	         [-rate 16] [-fields 2] [-sz-field temperature -eb 1e-3] [-seed 7]
//	    Generate a synthetic Nyx-like stream into the store.
//
//	archived -splice archive.bin -rate 2 [-o out.bin]
//	    Locally derive the rate-R form of a stored v2 field archive —
//	    byte-identical to what a server responds for ?rate=R, so it is
//	    the reference half of the CI byte-identity gate.
//
// API:
//
//	GET /v1/archive                               stream listing
//	GET /v1/archive/{stream}/manifest             steps, fields, rate rungs
//	GET /v1/archive/{stream}/{step}/{field}       stored bytes (v2 archive)
//	    ?rate=R                                   spliced to R bits/value
//	    ?preview=N                                sz preview (raw field wire)
//	GET /v1/stats                                 cache + per-tier counters
//
// On SIGTERM/SIGINT the listener stops accepting, in-flight responses
// finish, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/adaptive"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("archived: ")
	var (
		dir     = flag.String("dir", "", "store directory of *.acs streams")
		addr    = flag.String("addr", ":8324", "listen address")
		cacheMB = flag.Int64("cache-mb", 256, "representation cache budget in MiB")

		gen     = flag.Bool("gen", false, "generate a synthetic stream into -dir instead of serving")
		stream  = flag.String("stream", "demo", "stream name (with -gen)")
		steps   = flag.Int("steps", 3, "steps to generate (with -gen)")
		dim     = flag.Int("dim", 32, "field edge length (with -gen)")
		rate    = flag.Float64("rate", 16, "stored ZFP rate with -gen; target rate with -splice")
		nFields = flag.Int("fields", 2, "ZFP fields per step (with -gen, max 6)")
		szField = flag.String("sz-field", "", "also archive this field as SZ for previews (with -gen)")
		eb      = flag.Float64("eb", 1e-3, "SZ absolute error bound for -sz-field (with -gen)")
		seed    = flag.Uint64("seed", 7, "synthetic universe seed (with -gen)")

		splice = flag.String("splice", "", "splice this stored v2 archive file locally and exit")
		out    = flag.String("o", "", "output path for -splice (default stdout)")
	)
	flag.Parse()

	switch {
	case *splice != "":
		if err := runSplice(*splice, *rate, *out); err != nil {
			log.Fatal(err)
		}
	case *gen:
		if err := runGen(*dir, *stream, *steps, *dim, *rate, *nFields, *szField, *eb, *seed); err != nil {
			log.Fatal(err)
		}
	default:
		if err := runServe(*dir, *addr, *cacheMB<<20); err != nil {
			log.Fatal(err)
		}
	}
}

func runSplice(path string, rate float64, out string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spliced, err := adaptive.SpliceArchiveField(data, rate)
	if err != nil {
		return err
	}
	if out == "" {
		_, err = os.Stdout.Write(spliced)
		return err
	}
	log.Printf("spliced %s to rate %g: %d -> %d bytes", path, rate, len(data), len(spliced))
	return os.WriteFile(out, spliced, 0o644)
}

func runGen(dir, stream string, steps, dim int, rate float64, nFields int, szField string, eb float64, seed uint64) error {
	if dir == "" {
		return errors.New("-gen requires -dir")
	}
	names := adaptive.FieldNames()
	if nFields < 1 || nFields > len(names) {
		return fmt.Errorf("-fields must be 1..%d", len(names))
	}
	names = names[:nFields]
	if szField != "" {
		found := false
		for _, n := range adaptive.FieldNames() {
			if n == szField {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("-sz-field %q is not a synthetic field (have %s)", szField, strings.Join(adaptive.FieldNames(), ", "))
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	src, err := adaptive.NewSynthStream(adaptive.SynthStreamParams{
		Base:  adaptive.SynthParams{N: dim, Seed: seed},
		Steps: steps,
	})
	if err != nil {
		return err
	}
	path := filepath.Join(dir, stream+adaptive.ArchiveStreamSuffix)
	w, err := adaptive.NewArchiveWriter(path, adaptive.ArchiveWriterOptions{Rate: rate})
	if err != nil {
		return err
	}
	for {
		fields, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		step := make(map[string]adaptive.ArchiveFieldSpec, len(names)+1)
		for _, name := range names {
			step[name] = adaptive.ArchiveFieldSpec{Field: fields[name]}
		}
		if szField != "" {
			step[szField+"_preview"] = adaptive.ArchiveFieldSpec{
				Field: fields[szField], Codec: "sz", ErrorBound: eb,
			}
		}
		if err := w.WriteStep(step); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	log.Printf("generated %s: %d steps of %d³, stored rate %g, %d bytes (+ sidecar)",
		path, steps, dim, rate, fi.Size())
	return nil
}

func runServe(dir, addr string, cacheBytes int64) error {
	if dir == "" {
		return errors.New("serving requires -dir")
	}
	srv, err := adaptive.NewArchiveServer(adaptive.ArchiveServerConfig{Dir: dir, CacheBytes: cacheBytes})
	if err != nil {
		return err
	}
	defer srv.Close()
	hs := adaptive.NewH2CServer(addr, srv.Handler())

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	log.Printf("serving %s on %s (cache %d MiB)", dir, addr, cacheBytes>>20)

	select {
	case err := <-errc:
		return err
	case s := <-sig:
		log.Printf("%s: shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		st := srv.Stats()
		log.Printf("served: cache %d hits / %d misses / %d evictions, %d splices, %d preview decodes",
			st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions, st.Splices, st.PreviewDecodes)
		return nil
	}
}

