// Package apierr holds the sentinel errors of the public error taxonomy.
//
// The sentinels are defined here — below internal/ — because every layer
// of the stack wraps them (codec lookups, archive parsers, config
// validation, the streaming driver), and the public facade re-exports the
// same values as adaptive.ErrBadConfig, adaptive.ErrCorruptArchive,
// adaptive.ErrCodecUnknown, and adaptive.ErrDriftRecalibration. Because
// re-export is by value (var aliasing), errors.Is from a facade-level call
// matches no matter how many layers wrapped the error with %w on the way
// up.
//
// Wrapping convention: each layer keeps its stable "pkg:" message prefix
// and wraps both the sentinel and the underlying cause, e.g.
//
//	fmt.Errorf("core: %w: bad archive magic %q", apierr.ErrCorruptArchive, m)
//	fmt.Errorf("core: partition %d: %w", i, err) // cause already tagged
package apierr

import (
	"errors"
	"fmt"
)

var (
	// ErrBadConfig marks a rejected configuration: a non-positive
	// partition dim, an out-of-range clamp factor, a non-positive quality
	// budget, a field whose geometry does not match the engine layout.
	ErrBadConfig = errors.New("invalid configuration")

	// ErrCorruptArchive marks an archive (v2 field archive, v3 stream
	// container, or a codec frame inside one) that failed validation:
	// bad magic, hostile header, truncation, trailing bytes, CRC mismatch.
	ErrCorruptArchive = errors.New("corrupt archive")

	// ErrCodecUnknown marks a codec ID no backend is registered for,
	// whether it came from configuration or from a frame header.
	ErrCodecUnknown = errors.New("unknown codec")

	// ErrDriftRecalibration marks a mid-run recalibration failure: the
	// streaming driver detected drift (or was told to re-fit), and fitting
	// the new rate model failed. The initial calibration of a field is a
	// plain error — only re-fits of an already-calibrated field carry this
	// sentinel, so callers can distinguish "the stream went bad mid-run"
	// from "the run never got started".
	ErrDriftRecalibration = errors.New("drift recalibration failed")

	// ErrOverloaded marks a request the compression service refused in
	// order to keep its queues bounded: the tenant's admission queue was
	// full (backpressure) or the server was shutting down. The request was
	// never started; retrying after a backoff is safe and is what the
	// service's 429 responses advertise.
	ErrOverloaded = errors.New("server overloaded")

	// ErrDraining marks a request refused because the service is in
	// lame-duck drain (SIGTERM received): admission is closed while
	// in-flight work finishes. Like ErrOverloaded the request was never
	// started, so retrying is safe — but against a replacement instance,
	// which is why the service answers 503 rather than 429.
	ErrDraining = errors.New("server draining")

	// ErrCircuitOpen marks a request the resilient client refused locally:
	// its per-endpoint circuit breaker is open after consecutive failures,
	// and sending more traffic at a struggling endpoint would deepen the
	// overload. The request never left the client; retry after the
	// breaker's cooldown.
	ErrCircuitOpen = errors.New("circuit open")

	// ErrNotFound marks a read request naming a resource the server does
	// not have: an unknown archive stream, a step past the end, a field
	// the snapshot never carried. It is a client-addressing error (HTTP
	// 404), not corruption — the archive that is there is healthy.
	ErrNotFound = errors.New("not found")

	// ErrRankFailed marks a distributed collective that lost a peer rank:
	// the rank panicked (in-process world) or stopped heartbeating /
	// dropped its connection (TCP transport). The collective's result was
	// discarded on every surviving rank, so the step that issued it can be
	// retried after rebalancing the dead rank's partitions onto the
	// survivors. Surviving ranks always get this error instead of hanging.
	ErrRankFailed = errors.New("rank failed")
)

// DriftRecalibrationError is the typed form of ErrDriftRecalibration: it
// records which field's re-fit failed and the drift that triggered it, so
// callers can errors.As for the details while errors.Is still matches the
// sentinel (both the sentinel and the cause are in the unwrap chain).
type DriftRecalibrationError struct {
	// Field is the streamed field whose recalibration failed.
	Field string
	// Drift is the relative drift of the global mean feature from the
	// calibration anchor, measured when the re-fit was triggered.
	Drift float64
	// Err is the underlying calibration failure.
	Err error
}

func (e *DriftRecalibrationError) Error() string {
	return fmt.Sprintf("%v for field %q at drift %.3g: %v", ErrDriftRecalibration, e.Field, e.Drift, e.Err)
}

// Unwrap exposes both the sentinel and the cause to errors.Is/As.
func (e *DriftRecalibrationError) Unwrap() []error { return []error{ErrDriftRecalibration, e.Err} }

// OverloadError is the typed form of ErrOverloaded: it records which
// tenant's queue refused the request and how deep that queue was, so
// callers can errors.As for the details while errors.Is still matches the
// sentinel.
type OverloadError struct {
	// Tenant is the admission queue that was full.
	Tenant string
	// QueueDepth is the tenant queue's configured capacity, all of it in
	// use when the request was refused.
	QueueDepth int
	// RetryAfterSeconds is the server's estimate of when retrying might
	// succeed, derived from the refused tenant's backlog and drain rate and
	// clamped to [1, 30]. Zero when the refusing layer made no estimate
	// (callers should fall back to their own backoff).
	RetryAfterSeconds int
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("%v: tenant %q queue full (%d queued)", ErrOverloaded, e.Tenant, e.QueueDepth)
}

// Unwrap exposes the sentinel to errors.Is.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// RankFailedError is the typed form of ErrRankFailed: it records which
// rank was lost and the membership epoch opened by the failure, so a
// distributed step driver can errors.As for the details (refresh its view
// of the surviving ranks, rebalance, retry) while errors.Is still matches
// the sentinel.
type RankFailedError struct {
	// Rank is the rank that was declared failed.
	Rank int
	// Epoch is the membership epoch in force after the failure was
	// detected (the in-process world, which cannot recover, always
	// reports 0).
	Epoch int
	// Err is the underlying cause — the recovered panic value, a
	// heartbeat timeout, a connection reset. May be nil when the detector
	// has only the fact of the failure.
	Err error
}

func (e *RankFailedError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("%v: rank %d (epoch %d): %v", ErrRankFailed, e.Rank, e.Epoch, e.Err)
	}
	return fmt.Sprintf("%v: rank %d (epoch %d)", ErrRankFailed, e.Rank, e.Epoch)
}

// Unwrap exposes both the sentinel and the cause to errors.Is/As.
func (e *RankFailedError) Unwrap() []error {
	if e.Err == nil {
		return []error{ErrRankFailed}
	}
	return []error{ErrRankFailed, e.Err}
}
