package codec

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// testBrick builds a smooth 16³ brick with structure on several scales so
// both codecs have something real to predict/transform.
func testBrick() ([]float32, int, int, int) {
	const n = 16
	data := make([]float32, n*n*n)
	i := 0
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				v := math.Sin(float64(x)*0.4) * math.Cos(float64(y)*0.3)
				v += 0.5 * math.Sin(float64(z)*0.7+float64(x)*0.1)
				v += 2 // keep strictly positive for PWREL paths
				data[i] = float32(v)
				i++
			}
		}
	}
	return data, n, n, n
}

func maxErr(t *testing.T, a, b []float32) float64 {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("length mismatch: %d vs %d", len(a), len(b))
	}
	return maxAbsErr(a, b)
}

// TestRoundTripThroughInterface drives both registered codecs end to end
// through the Codec interface: compress, envelope-encode, decode against
// the registry, decompress, and check the reconstruction.
func TestRoundTripThroughInterface(t *testing.T) {
	data, nx, ny, nz := testBrick()
	cases := []struct {
		id  ID
		opt Options
		// bound is the max error the reconstruction must satisfy; for the
		// fixed-rate zfp frame it is a generous sanity bound, not a
		// guarantee.
		bound float64
	}{
		{SZ, Options{ErrorBound: 0.01}, 0.01},
		{SZ, Options{ErrorBound: 0.01, QuantizeBeforePredict: true}, 0.01},
		{SZ, Options{ErrorBound: 0.01, Predictor: MeanNeighbor}, 0.01},
		{ZFP, Options{Rate: 16}, 0.1},
	}
	for _, tc := range cases {
		c, err := Lookup(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		f, err := c.Compress(data, nx, ny, nz, tc.opt, &Scratch{})
		if err != nil {
			t.Fatalf("%s: %v", tc.id, err)
		}
		if f.CodecID() != tc.id {
			t.Errorf("frame tagged %q, want %q", f.CodecID(), tc.id)
		}
		if gx, gy, gz := f.Dims(); gx != nx || gy != ny || gz != nz {
			t.Errorf("%s: dims %dx%dx%d", tc.id, gx, gy, gz)
		}
		if f.N() != len(data) || f.CompressedSize() <= 0 {
			t.Errorf("%s: N %d size %d", tc.id, f.N(), f.CompressedSize())
		}

		// Self-describing envelope round trip.
		blob := EncodeFrame(f)
		parsed, err := DecodeFrame(blob)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.id, err)
		}
		if parsed.CodecID() != tc.id {
			t.Errorf("parsed frame tagged %q, want %q", parsed.CodecID(), tc.id)
		}
		direct, err := f.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		viaBytes, err := parsed.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		if me := maxErr(t, data, direct); me > tc.bound {
			t.Errorf("%s: max error %v > %v", tc.id, me, tc.bound)
		}
		for i := range direct {
			if direct[i] != viaBytes[i] {
				t.Fatalf("%s: envelope round trip changed data at %d", tc.id, i)
			}
		}
	}
}

// TestZFPBoundedRateSearch checks the error-bound-driven rate search: the
// achieved error must meet the bound, and a looser bound must not cost
// more bits.
func TestZFPBoundedRateSearch(t *testing.T) {
	data, nx, ny, nz := testBrick()
	c, err := Lookup(ZFP)
	if err != nil {
		t.Fatal(err)
	}
	var prevSize int
	for i, eb := range []float64{1e-4, 1e-2, 0.5} {
		f, err := c.Compress(data, nx, ny, nz, Options{ErrorBound: eb}, nil)
		if err != nil {
			t.Fatal(err)
		}
		recon, err := f.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		if me := maxErr(t, data, recon); me > eb {
			t.Errorf("eb %g: achieved max error %g", eb, me)
		}
		if f.ErrorBound() != eb {
			t.Errorf("eb %g: frame reports bound %g", eb, f.ErrorBound())
		}
		if i > 0 && f.CompressedSize() > prevSize {
			t.Errorf("looser bound %g cost more bits (%d > %d)", eb, f.CompressedSize(), prevSize)
		}
		prevSize = f.CompressedSize()
	}
	if _, err := c.Compress(data, nx, ny, nz, Options{}, nil); err == nil {
		t.Error("zfp accepted neither rate nor error bound")
	}
}

// TestDecodeFrameRejectsUnknownCodec is the frame-header contract: an
// envelope naming an unregistered codec must fail with ErrUnknownCodec and
// an actionable message.
func TestDecodeFrameRejectsUnknownCodec(t *testing.T) {
	blob := append([]byte(frameMagic), frameVersion, 4)
	blob = append(blob, "lz77"...)
	blob = append(blob, 0, 1, 2, 3)
	_, err := DecodeFrame(blob)
	if !errors.Is(err, ErrUnknownCodec) {
		t.Fatalf("got %v, want ErrUnknownCodec", err)
	}
	if !strings.Contains(err.Error(), `"lz77"`) || !strings.Contains(err.Error(), "sz") {
		t.Errorf("error not actionable: %v", err)
	}
}

func TestDecodeFrameRejectsCorruptEnvelopes(t *testing.T) {
	data, nx, ny, nz := testBrick()
	c, _ := Lookup(SZ)
	f, err := c.Compress(data, nx, ny, nz, Options{ErrorBound: 0.01}, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := EncodeFrame(f)
	cases := map[string]func([]byte) []byte{
		"short":    func(b []byte) []byte { return b[:3] },
		"magic":    func(b []byte) []byte { b[0] = 'x'; return b },
		"version":  func(b []byte) []byte { b[4] = 99; return b },
		"zero-id":  func(b []byte) []byte { b[5] = 0; return b },
		"long-id":  func(b []byte) []byte { b[5] = 200; return b },
		"body-bit": func(b []byte) []byte { b[len(b)-3] ^= 0xFF; return b },
	}
	for name, corrupt := range cases {
		blob := append([]byte(nil), good...)
		if _, err := DecodeFrame(corrupt(blob)); err == nil {
			t.Errorf("%s corruption accepted", name)
		}
	}
}

// TestRegistryErrors pins down the registry contract: actionable lookup
// failures, duplicate and invalid registrations rejected.
func TestRegistryErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(nil); err == nil {
		t.Error("nil codec registered")
	}
	if _, err := r.Lookup("sz"); !errors.Is(err, ErrUnknownCodec) {
		t.Errorf("empty registry lookup: %v", err)
	}
	if err := r.Register(szCodec{}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(szCodec{}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := r.Register(longIDCodec{}); err == nil {
		t.Error("over-long codec ID accepted (frame envelope cannot encode it)")
	}
	if _, err := r.Lookup("zstd"); err == nil {
		t.Error("unknown id resolved")
	} else {
		if !strings.Contains(err.Error(), `"zstd"`) {
			t.Errorf("error lacks the unknown id: %v", err)
		}
		if !strings.Contains(err.Error(), "registered: sz") {
			t.Errorf("error lacks the registered set: %v", err)
		}
	}
}

// longIDCodec exists only to probe the registration ID-length bound.
type longIDCodec struct{ szCodec }

func (longIDCodec) ID() ID { return ID(strings.Repeat("x", maxIDLen+1)) }

// TestDefaultRegistryContents documents what ships registered.
func TestDefaultRegistryContents(t *testing.T) {
	ids := IDs()
	if len(ids) != 2 || ids[0] != SZ || ids[1] != ZFP {
		t.Errorf("default registry: %v", ids)
	}
}

// TestScratchReuse compresses many bricks through one scratch and checks
// results are identical to scratch-free compression.
func TestScratchReuse(t *testing.T) {
	data, nx, ny, nz := testBrick()
	c, _ := Lookup(SZ)
	var s Scratch
	for _, opt := range []Options{
		{ErrorBound: 0.01},
		{ErrorBound: 0.3, QuantizeBeforePredict: true},
		{ErrorBound: 0.001, Mode: PWREL},
	} {
		pooled, err := c.Compress(data, nx, ny, nz, opt, &s)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := c.Compress(data, nx, ny, nz, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		a, b := EncodeFrame(pooled), EncodeFrame(fresh)
		if string(a) != string(b) {
			t.Errorf("opt %+v: pooled stream differs from fresh stream", opt)
		}
	}
}
