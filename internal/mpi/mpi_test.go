package mpi

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

func TestRunBasics(t *testing.T) {
	var count atomic.Int64
	err := Run(8, func(c *Comm) error {
		if c.Size() != 8 {
			t.Errorf("size = %d", c.Size())
		}
		if c.Rank() < 0 || c.Rank() >= 8 {
			t.Errorf("rank = %d", c.Rank())
		}
		count.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 8 {
		t.Fatalf("ran %d ranks", count.Load())
	}
}

func TestRunRejectsZeroSize(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("size 0 accepted")
	}
}

func TestRunPropagatesError(t *testing.T) {
	want := errors.New("rank failure")
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestAllreduceSum(t *testing.T) {
	err := Run(16, func(c *Comm) error {
		got := c.Allreduce(float64(c.Rank()), OpSum)
		if got != 120 { // 0+1+...+15
			t.Errorf("rank %d: sum = %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMinMax(t *testing.T) {
	err := Run(7, func(c *Comm) error {
		v := float64(c.Rank()*3 - 5)
		if got := c.Allreduce(v, OpMin); got != -5 {
			t.Errorf("min = %v", got)
		}
		if got := c.Allreduce(v, OpMax); got != 13 {
			t.Errorf("max = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceRepeated(t *testing.T) {
	// Back-to-back collectives must not interfere (slot reuse is fenced).
	err := Run(5, func(c *Comm) error {
		for iter := 0; iter < 100; iter++ {
			got := c.Allreduce(float64(c.Rank()+iter), OpSum)
			want := float64(10 + 5*iter) // Σ ranks + size·iter
			if got != want {
				t.Errorf("iter %d: %v != %v", iter, got, want)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceDeterministicOrder(t *testing.T) {
	// Floating-point sums depend on order; our contract is rank order.
	vals := []float64{1e16, 1, -1e16, 1}
	want := ((vals[0] + vals[1]) + vals[2]) + vals[3]
	for trial := 0; trial < 10; trial++ {
		err := Run(4, func(c *Comm) error {
			got := c.Allreduce(vals[c.Rank()], OpSum)
			if got != want {
				t.Errorf("trial %d: %v != %v", trial, got, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceSlice(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		v := []float64{float64(c.Rank()), 1, -float64(c.Rank())}
		got, err := c.AllreduceSlice(v, OpSum)
		if err != nil {
			return err
		}
		if got[0] != 6 || got[1] != 4 || got[2] != -6 {
			t.Errorf("rank %d: %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSliceLengthMismatch(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		v := make([]float64, 2+c.Rank())
		_, err := c.AllreduceSlice(v, OpSum)
		return err
	})
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestAllgather(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		got := c.Allgather(float64(c.Rank() * c.Rank()))
		for r := 0; r < 6; r++ {
			if got[r] != float64(r*r) {
				t.Errorf("rank %d: got[%d] = %v", c.Rank(), r, got[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherSlice(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		mine := make([]float64, c.Rank()+1)
		for i := range mine {
			mine[i] = float64(c.Rank())
		}
		got := c.AllgatherSlice(mine)
		want := []float64{0, 1, 1, 2, 2, 2}
		if len(got) != len(want) {
			t.Errorf("len %d", len(got))
			return nil
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("got %v", got)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		v := -1.0
		if c.Rank() == 2 {
			v = 42
		}
		if got := c.Bcast(v, 2); got != 42 {
			t.Errorf("rank %d: bcast = %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, []float64{3.14, 2.71})
		}
		got, err := c.Recv(0)
		if err != nil {
			return err
		}
		if len(got) != 2 || got[0] != 3.14 || got[1] != 2.71 {
			t.Errorf("recv %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesData(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float64{1}
			if err := c.Send(1, buf); err != nil {
				return err
			}
			buf[0] = 999 // must not affect the receiver
			return nil
		}
		got, err := c.Recv(0)
		if err != nil {
			return err
		}
		if got[0] != 1 {
			t.Errorf("send aliased caller buffer: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvInvalidRank(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if err := c.Send(7, nil); err == nil {
			t.Error("send to invalid rank accepted")
		}
		if _, err := c.Recv(-1); err == nil {
			t.Error("recv from invalid rank accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	// After a barrier, every rank must observe all pre-barrier writes.
	var stage [8]atomic.Int64
	err := Run(8, func(c *Comm) error {
		stage[c.Rank()].Store(1)
		c.Barrier()
		for r := 0; r < 8; r++ {
			if stage[r].Load() != 1 {
				t.Errorf("rank %d saw rank %d pre-barrier", c.Rank(), r)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCount(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		c.Allreduce(1, OpSum)
		c.Allgather(1)
		c.Barrier()
		coll, _ := c.Stats()
		if coll != 2 {
			t.Errorf("collectives = %d, want 2", coll)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGlobalMeanPattern(t *testing.T) {
	// The paper's exact pattern: each rank computes a local mean, the
	// global mean comes from one Allreduce of (sum, count).
	local := []float64{10, 20, 30, 40}
	err := Run(4, func(c *Comm) error {
		sum := c.Allreduce(local[c.Rank()], OpSum)
		n := c.Allreduce(1, OpSum)
		mean := sum / n
		if math.Abs(mean-25) > 1e-12 {
			t.Errorf("global mean %v", mean)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
