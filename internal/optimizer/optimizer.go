// Package optimizer implements the paper's error-bound allocation
// (Sec. 3.6): given the calibrated rate model and per-partition features,
// assign each partition an error bound that maximizes the dataset
// compression ratio subject to a post-analysis quality budget.
//
// For FFT-based quality the budget is an average error bound (Eq. 10 shows
// the power-spectrum distortion depends only on the average), so the
// optimizer solves
//
//	minimize   Σ_m C_m·eb_m^c
//	subject to mean(eb_m) = ebAvg,  eb_m ∈ [ebAvg/k, k·ebAvg]
//
// whose interior optimum equalizes the bit-rate derivative across
// partitions: eb_m ∝ C_m^{1/(1−c)} (the paper's Eq. 16 in the published
// form uses exponent 1/c, which corresponds to the opposite sign convention
// for c; both are available, see Strategy). The box constraint is the
// paper's ×4 / ÷4 guard, and the mean constraint is met exactly by a
// monotone bisection on a global scale factor.
//
// For the halo finder the additional budget is linear in every eb (Eq. 11),
// so a single multiplicative correction enforces it exactly.
package optimizer

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/stats"
)

// Strategy selects the allocation exponent γ in eb_m ∝ (C_m/C_a)^γ.
type Strategy int

const (
	// EqualDerivative uses γ = 1/(1−c), the Lagrangian optimum of the
	// rate model under a mean-eb constraint. Default.
	EqualDerivative Strategy = iota
	// PaperEq16 uses γ = 1/c exactly as printed in the paper's Eq. 16
	// (kept for the ablation; with c < 0 it inverts the allocation).
	PaperEq16
)

func (s Strategy) String() string {
	switch s {
	case EqualDerivative:
		return "equal-derivative"
	case PaperEq16:
		return "paper-eq16"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config parameterizes an allocation.
type Config struct {
	// AvgEB is the quality budget: the mean error bound across partitions.
	AvgEB float64
	// ClampFactor k bounds each eb to [AvgEB/k, k·AvgEB] (paper: 4).
	ClampFactor float64
	// Strategy selects the allocation exponent (default EqualDerivative).
	Strategy Strategy
}

func (c Config) withDefaults() Config {
	if c.ClampFactor == 0 {
		c.ClampFactor = 4
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.AvgEB <= 0 {
		return errors.New("optimizer: AvgEB must be positive")
	}
	if c.ClampFactor < 1 {
		return fmt.Errorf("optimizer: clamp factor %v must be ≥ 1", c.ClampFactor)
	}
	return nil
}

// Result is one allocation.
type Result struct {
	EBs []float64
	// PredictedBitRate is the rate model's dataset estimate at the
	// allocation.
	PredictedBitRate float64
	// UniformBitRate is the model estimate for the static baseline
	// (every partition at AvgEB); the ratio of the two is the predicted
	// improvement.
	UniformBitRate float64
	// HaloScaled is set when the halo-mass budget forced a downscale.
	HaloScaled bool
	// HaloScale is the factor applied (1 when not scaled).
	HaloScale float64
}

// Allocate assigns per-partition error bounds under an average-eb budget.
func Allocate(rm *model.RateModel, features []float64, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := rm.Validate(); err != nil {
		return nil, err
	}
	if len(features) == 0 {
		return nil, errors.New("optimizer: no partitions")
	}
	gamma := allocationExponent(rm.Exponent, cfg.Strategy)

	// C_a anchors the relative allocation at the dataset-average feature,
	// the quantity the paper gathers with one MPI_Allreduce.
	ca := rm.Cm(stats.MeanOf(features))
	if ca <= 0 {
		return nil, fmt.Errorf("optimizer: non-positive anchor coefficient %v", ca)
	}
	raw := make([]float64, len(features))
	for i, f := range features {
		cm := rm.Cm(f)
		raw[i] = cfg.AvgEB * math.Pow(cm/ca, gamma)
	}
	ebs := clampToMean(raw, cfg.AvgEB, cfg.ClampFactor)

	pred, err := rm.DatasetBitRate(features, ebs)
	if err != nil {
		return nil, err
	}
	uniform := make([]float64, len(features))
	for i := range uniform {
		uniform[i] = cfg.AvgEB
	}
	uni, err := rm.DatasetBitRate(features, uniform)
	if err != nil {
		return nil, err
	}
	return &Result{EBs: ebs, PredictedBitRate: pred, UniformBitRate: uni, HaloScale: 1}, nil
}

func allocationExponent(c float64, s Strategy) float64 {
	switch s {
	case PaperEq16:
		return 1 / c
	default:
		return 1 / (1 - c)
	}
}

// AllocationExponent exposes the strategy exponent γ for callers that
// evaluate eb_m = ebAvg·(C_m/C_a)^γ rank-locally (the in situ path, which
// cannot run the global mean-preserving rescale).
func AllocationExponent(c float64, s Strategy) float64 { return allocationExponent(c, s) }

// clampToMean scales raw bounds by a global factor s and clamps them to
// [avg/k, k·avg] such that the clamped mean equals avg exactly (within
// bisection tolerance). mean(clamp(s·raw)) is nondecreasing in s, so a
// bisection always converges; the box contains avg, so a solution exists.
func clampToMean(raw []float64, avg, k float64) []float64 {
	lo, hi := avg/k, avg*k
	clampAt := func(s float64) []float64 {
		out := make([]float64, len(raw))
		for i, v := range raw {
			x := v * s
			if x < lo {
				x = lo
			}
			if x > hi {
				x = hi
			}
			out[i] = x
		}
		return out
	}
	meanAt := func(s float64) float64 { return stats.MeanOf(clampAt(s)) }

	// Bracket the scale: s→0 gives mean=lo ≤ avg; a large s gives hi ≥ avg.
	sLo, sHi := 0.0, 1.0
	for meanAt(sHi) < avg && sHi < 1e12 {
		sHi *= 2
	}
	for iter := 0; iter < 100; iter++ {
		mid := (sLo + sHi) / 2
		if meanAt(mid) < avg {
			sLo = mid
		} else {
			sHi = mid
		}
	}
	return clampAt(sHi)
}

// HaloConstraint describes the halo-finder quality budget for a density
// field (Sec. 3.6 second optimization).
type HaloConstraint struct {
	// TBoundary is the halo-finder boundary threshold (t_boundary).
	TBoundary float64
	// RefEB is the error bound the boundary-cell counts were measured at.
	RefEB float64
	// BoundaryCells is the per-partition count at RefEB.
	BoundaryCells []int
	// MassBudget is the admissible total absolute halo-mass distortion.
	MassBudget float64
}

// Validate checks the constraint against a partition count.
func (h HaloConstraint) Validate(parts int) error {
	if h.TBoundary <= 0 {
		return errors.New("optimizer: halo boundary threshold must be positive")
	}
	if h.RefEB <= 0 {
		return errors.New("optimizer: halo reference eb must be positive")
	}
	if len(h.BoundaryCells) != parts {
		return fmt.Errorf("optimizer: %d boundary-cell counts for %d partitions",
			len(h.BoundaryCells), parts)
	}
	if h.MassBudget <= 0 {
		return errors.New("optimizer: halo mass budget must be positive")
	}
	return nil
}

// AllocateWithHalo runs the paper's combined strategy: optimize for the
// power spectrum first, then check the halo-mass budget (Eq. 11) and scale
// the whole allocation down if it is violated. The returned result reports
// whether scaling was applied.
func AllocateWithHalo(rm *model.RateModel, features []float64, cfg Config, hc HaloConstraint) (*Result, error) {
	res, err := Allocate(rm, features, cfg)
	if err != nil {
		return nil, err
	}
	if err := hc.Validate(len(features)); err != nil {
		return nil, err
	}
	est, err := model.MassFaultFromBoundaryCells(hc.TBoundary, hc.RefEB, hc.BoundaryCells, res.EBs)
	if err != nil {
		return nil, err
	}
	scale := model.HaloBudgetScale(est, hc.MassBudget)
	if scale < 1 {
		for i := range res.EBs {
			res.EBs[i] *= scale
		}
		res.HaloScaled = true
		res.HaloScale = scale
		res.PredictedBitRate, err = rm.DatasetBitRate(features, res.EBs)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// PredictedImprovement returns the model's predicted compression-ratio
// improvement of the allocation over the uniform baseline, as a fraction
// (0.56 ≡ +56 %). Ratio ∝ 1/bitrate, so the improvement is
// uniform/optimized − 1.
func (r *Result) PredictedImprovement() float64 {
	if r.PredictedBitRate <= 0 {
		return 0
	}
	return r.UniformBitRate/r.PredictedBitRate - 1
}
