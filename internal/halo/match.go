package halo

import (
	"math"
	"sort"
)

// MatchResult summarizes how a reconstructed catalog compares to the
// original one. The paper evaluates three things (Sec. 2.1): halo position
// change, halo count change, and per-halo mass change; its quality target
// is mass-ratio RMSE within 1 ± 0.01.
type MatchResult struct {
	Original      int // halos in the original catalog
	Reconstructed int // halos in the reconstructed catalog
	Matched       int // greedy positional matches
	Lost          int // original halos without a match
	Spurious      int // reconstructed halos without a match

	// MassRatioRMSE is sqrt(mean((m'/m − 1)²)) over matched halos.
	MassRatioRMSE float64
	// MeanAbsMassDiff is mean |m' − m| over matched halos.
	MeanAbsMassDiff float64
	// TotalAbsMassDiff is Σ |m' − m| over matched halos — the quantity the
	// paper's Eq. 11 estimates as M_fault.
	TotalAbsMassDiff float64
	// PositionRMSE is the RMS centroid displacement (periodic metric).
	PositionRMSE float64
	// CellDiff is Σ |cells' − cells| over matched halos (Fig. 8's
	// changed-candidate-cell count restricted to matched halos).
	CellDiff int
}

// Match greedily pairs halos by centroid distance: original halos are
// visited in descending mass order and take the closest unclaimed
// reconstructed halo within maxDist (periodic distance in a box of the
// given dimensions). Greedy-by-mass matching is standard for halo catalog
// comparison and is deterministic.
func Match(orig, recon *Catalog, maxDist float64, nx, ny, nz int) MatchResult {
	res := MatchResult{Original: orig.Count(), Reconstructed: recon.Count()}
	claimed := make([]bool, recon.Count())

	type pair struct {
		massErr2, posErr2, absDiff float64
		cellDiff                   int
	}
	var pairs []pair
	for _, h := range orig.Halos { // already sorted by descending mass
		best := -1
		bestD := maxDist
		for j, g := range recon.Halos {
			if claimed[j] {
				continue
			}
			d := periodicDist(h.X, h.Y, h.Z, g.X, g.Y, g.Z, float64(nx), float64(ny), float64(nz))
			if d <= bestD {
				bestD = d
				best = j
			}
		}
		if best < 0 {
			res.Lost++
			continue
		}
		claimed[best] = true
		g := recon.Halos[best]
		ratio := 0.0
		if h.Mass != 0 {
			ratio = g.Mass/h.Mass - 1
		}
		cd := g.Cells - h.Cells
		if cd < 0 {
			cd = -cd
		}
		pairs = append(pairs, pair{
			massErr2: ratio * ratio,
			posErr2:  bestD * bestD,
			absDiff:  math.Abs(g.Mass - h.Mass),
			cellDiff: cd,
		})
	}
	res.Matched = len(pairs)
	for _, j := range claimed {
		if !j {
			res.Spurious++
		}
	}
	if len(pairs) > 0 {
		var m2, p2, ad float64
		for _, p := range pairs {
			m2 += p.massErr2
			p2 += p.posErr2
			ad += p.absDiff
			res.CellDiff += p.cellDiff
		}
		res.MassRatioRMSE = math.Sqrt(m2 / float64(len(pairs)))
		res.PositionRMSE = math.Sqrt(p2 / float64(len(pairs)))
		res.MeanAbsMassDiff = ad / float64(len(pairs))
		res.TotalAbsMassDiff = ad
	}
	return res
}

// periodicDist is the Euclidean distance under periodic wrapping.
func periodicDist(x1, y1, z1, x2, y2, z2, nx, ny, nz float64) float64 {
	dx := wrapDelta(x1-x2, nx)
	dy := wrapDelta(y1-y2, ny)
	dz := wrapDelta(z1-z2, nz)
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

func wrapDelta(d, n float64) float64 {
	d = math.Mod(d, n)
	if d > n/2 {
		d -= n
	}
	if d < -n/2 {
		d += n
	}
	return d
}

// MassHistogram bins halo masses logarithmically between the catalog's
// minimum and maximum mass (Fig. 7's mass-distribution comparison).
// It returns bin edges (length bins+1) and counts (length bins).
func MassHistogram(c *Catalog, bins int) (edges []float64, counts []int) {
	if bins <= 0 || len(c.Halos) == 0 {
		return nil, nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, h := range c.Halos {
		if h.Mass < lo {
			lo = h.Mass
		}
		if h.Mass > hi {
			hi = h.Mass
		}
	}
	if lo <= 0 {
		lo = math.SmallestNonzeroFloat64
	}
	if hi <= lo {
		hi = lo * 1.0001
	}
	logLo, logHi := math.Log10(lo), math.Log10(hi)
	edges = make([]float64, bins+1)
	for i := range edges {
		edges[i] = math.Pow(10, logLo+(logHi-logLo)*float64(i)/float64(bins))
	}
	counts = make([]int, bins)
	for _, h := range c.Halos {
		pos := int(float64(bins) * (math.Log10(h.Mass) - logLo) / (logHi - logLo))
		if pos >= bins {
			pos = bins - 1
		}
		if pos < 0 {
			pos = 0
		}
		counts[pos]++
	}
	return edges, counts
}

// LargestN returns the N most massive halos (the paper's Table 1 tracks a
// single large halo across error bounds).
func (c *Catalog) LargestN(n int) []Halo {
	if n > len(c.Halos) {
		n = len(c.Halos)
	}
	out := make([]Halo, n)
	copy(out, c.Halos[:n])
	sort.Slice(out, func(i, j int) bool { return out[i].Mass > out[j].Mass })
	return out
}
