// Package archiveserve is the progressive multi-resolution archive
// server: a read-only HTTP service over v3 archive streams that stores
// each snapshot once, at maximum rate, and synthesizes any lower-rate
// representation on demand by bit-prefix splicing — never by
// recompression. ZFP's embedded per-block coding makes a rate-R stream a
// strict bit prefix of the rate-max stream, so one stored artifact serves
// the whole quality ladder: previews for browsing, intermediate rates for
// interactive analysis, the full stream for archival reads. SZ fields
// join the ladder with a decode-side coarsened preview rung.
//
// Synthesized representations are cached in a byte-budgeted LRU keyed by
// (stream, step, field, variant) and validated by strong ETags derived
// from the stream's footer checksum, so CDNs and clients revalidate with
// If-None-Match and resume with Range over stable bytes.
package archiveserve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/apierr"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/server"
)

// Config configures an archive server.
type Config struct {
	// Dir is the store directory holding *.acs streams.
	Dir string
	// CacheBytes bounds the representation cache (default 256 MiB).
	CacheBytes int64
	// Registry resolves codec frames (default codec.Default).
	Registry *codec.Registry
}

// Tier names requests by the quality rung they land on; /v1/stats reports
// one counter row per tier.
const (
	TierPreview  = "preview"  // sz coarsened rung
	TierBrowse   = "browse"   // spliced rate ≤ 8 bits/value
	TierAnalysis = "analysis" // spliced rate > 8 bits/value
	TierFull     = "full"     // stored max-rate bytes
)

// browseRateCeiling splits spliced requests into browse vs analysis.
const browseRateCeiling = 8

// TierStats is one tier's counter row.
type TierStats struct {
	Requests    uint64 `json:"requests"`
	NotModified uint64 `json:"not_modified"`
	CacheHits   uint64 `json:"cache_hits"`
	BytesServed uint64 `json:"bytes_served"`
}

// Stats is the /v1/stats document.
type Stats struct {
	Cache CacheStats            `json:"cache"`
	Tiers map[string]*TierStats `json:"tiers"`
	// Splices and PreviewDecodes count actual synthesis work — a cache-hot
	// fetch increments neither, which is the serving path's whole point.
	Splices         uint64 `json:"splices"`
	PreviewDecodes  uint64 `json:"preview_decodes"`
	SidecarRebuilds uint64 `json:"sidecar_rebuilds"`
}

// Server serves archive streams over HTTP.
type Server struct {
	store *Store
	cache *blockCache
	mux   *http.ServeMux

	mu       sync.Mutex
	tiers    map[string]*TierStats
	splices  uint64
	previews uint64
}

// New opens the store and builds the server.
func New(cfg Config) (*Server, error) {
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 256 << 20
	}
	store, err := OpenStore(cfg.Dir, cfg.Registry)
	if err != nil {
		return nil, err
	}
	s := &Server{
		store: store,
		cache: newBlockCache(cfg.CacheBytes),
		mux:   http.NewServeMux(),
		tiers: map[string]*TierStats{
			TierPreview: {}, TierBrowse: {}, TierAnalysis: {}, TierFull: {},
		},
	}
	s.mux.HandleFunc("GET /v1/archive", s.handleList)
	s.mux.HandleFunc("GET /v1/archive/{stream}/manifest", s.handleManifest)
	s.mux.HandleFunc("GET /v1/archive/{stream}/{step}/{field}", s.handleField)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s, nil
}

// Handler returns the HTTP handler (mount under NewHTTPServer for h2c).
func (s *Server) Handler() http.Handler { return s.mux }

// Close releases the store's stream handles.
func (s *Server) Close() error { return s.store.Close() }

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	tiers := make(map[string]*TierStats, len(s.tiers))
	for name, t := range s.tiers {
		cp := *t
		tiers[name] = &cp
	}
	st := Stats{
		Cache:          s.cache.stats(),
		Tiers:          tiers,
		Splices:        s.splices,
		PreviewDecodes: s.previews,
	}
	s.mu.Unlock()
	s.store.mu.Lock()
	st.SidecarRebuilds = s.store.sidecarRebuilds
	s.store.mu.Unlock()
	return st
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	names, err := s.store.List()
	if err != nil {
		server.WriteError(w, err)
		return
	}
	if names == nil {
		names = []string{}
	}
	writeJSON(w, map[string]any{"streams": names})
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	str, err := s.store.Stream(r.PathValue("stream"))
	if err != nil {
		server.WriteError(w, err)
		return
	}
	m, err := str.Manifest()
	if err != nil {
		server.WriteError(w, err)
		return
	}
	etag := fmt.Sprintf("\"%s-manifest\"", m.ETag)
	w.Header().Set("ETag", etag)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, m)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// variant is one resolved representation choice for a field request.
type variant struct {
	tier  string
	token string  // ETag/cache-key token ("full", "r4", "p2", ...)
	rate  float64 // the rate actually served (ZFP fields; 0 for preview)
	build func() ([]byte, error)
}

func (s *Server) handleField(w http.ResponseWriter, r *http.Request) {
	str, err := s.store.Stream(r.PathValue("stream"))
	if err != nil {
		server.WriteError(w, err)
		return
	}
	step, err := strconv.Atoi(r.PathValue("step"))
	if err != nil {
		server.WriteError(w, fmt.Errorf("archiveserve: %w: step %q is not an integer", apierr.ErrBadConfig, r.PathValue("step")))
		return
	}
	field := r.PathValue("field")
	fl, err := str.fieldLayout(step, field)
	if err != nil {
		server.WriteError(w, err)
		return
	}
	v, err := s.resolveVariant(r, str, step, fl)
	if err != nil {
		server.WriteError(w, err)
		return
	}

	etag := fieldETag(str.footerCRC, step, field, v.token)
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", "public, max-age=31536000, immutable")
	h.Set("Accept-Ranges", "bytes")
	if v.rate > 0 {
		h.Set("X-Served-Rate", strconv.FormatFloat(v.rate, 'g', -1, 64))
	}
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.count(v.tier, func(t *TierStats) { t.Requests++; t.NotModified++ })
		w.WriteHeader(http.StatusNotModified)
		return
	}

	key := str.name + "\x00" + strconv.Itoa(step) + "\x00" + field + "\x00" + v.token
	body, hit, err := s.cache.getOrBuild(key, v.build)
	if err != nil {
		server.WriteError(w, err)
		return
	}
	s.count(v.tier, func(t *TierStats) {
		t.Requests++
		if hit {
			t.CacheHits++
		}
	})
	if hit {
		h.Set("X-Cache", "HIT")
	} else {
		h.Set("X-Cache", "MISS")
	}
	h.Set("Content-Type", "application/octet-stream")

	size := int64(len(body))
	off, n, ranged, rerr := parseRange(r.Header.Get("Range"), size)
	if rerr != nil {
		h.Set("Content-Range", fmt.Sprintf("bytes */%d", size))
		w.WriteHeader(http.StatusRequestedRangeNotSatisfiable)
		return
	}
	status := http.StatusOK
	if ranged {
		h.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, off+n-1, size))
		body = body[off : off+n]
		status = http.StatusPartialContent
	}
	h.Set("Content-Length", strconv.FormatInt(int64(len(body)), 10))
	w.WriteHeader(status)
	if r.Method != http.MethodHead {
		n, _ := w.Write(body)
		s.count(v.tier, func(t *TierStats) { t.BytesServed += uint64(n) })
	}
}

// resolveVariant negotiates the representation: ?preview=N (sz fields),
// ?rate=R (zfp fields, quantized up to the quarter-bit bucket, capped at
// the stored rate), or neither (the stored bytes verbatim).
func (s *Server) resolveVariant(r *http.Request, str *stream, step int, fl *core.FieldLayout) (*variant, error) {
	q := r.URL.Query()
	rateStr, hasRate := q.Get("rate"), q.Has("rate")
	prevStr, hasPrev := q.Get("preview"), q.Has("preview")
	if hasRate && hasPrev {
		return nil, fmt.Errorf("archiveserve: %w: rate and preview are mutually exclusive", apierr.ErrBadConfig)
	}
	if hasPrev {
		octaves, err := strconv.Atoi(prevStr)
		if err != nil || octaves < 1 {
			return nil, fmt.Errorf("archiveserve: %w: preview %q, need a positive octave count", apierr.ErrBadConfig, prevStr)
		}
		return &variant{
			tier:  TierPreview,
			token: "p" + strconv.Itoa(octaves),
			build: func() ([]byte, error) {
				s.mu.Lock()
				s.previews++
				s.mu.Unlock()
				return str.preview(step, fl, octaves)
			},
		}, nil
	}
	full := &variant{
		tier:  TierFull,
		token: "full",
		build: func() ([]byte, error) { return str.readRange(fl.ArchiveOffset, fl.ArchiveLength) },
	}
	if !hasRate {
		return full, nil
	}
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || math.IsNaN(rate) || math.IsInf(rate, 0) || rate <= 0 {
		return nil, fmt.Errorf("archiveserve: %w: rate %q, need a positive finite bits/value", apierr.ErrBadConfig, rateStr)
	}
	maxRate, err := str.fieldMaxRate(fl.Name)
	if err != nil {
		return nil, err
	}
	if maxRate == 0 {
		return nil, fmt.Errorf("archiveserve: %w: field %q is %s, rate slicing is a zfp property",
			apierr.ErrBadConfig, fl.Name, fl.Partitions[0].Codec)
	}
	bucket := quantizeRate(rate)
	if bucket >= maxRate {
		// The stored stream already is the best answer ≥ the ask.
		full.rate = maxRate
		return full, nil
	}
	return &variant{
		tier:  tierOfRate(bucket),
		token: rateToken(bucket),
		rate:  bucket,
		build: func() ([]byte, error) {
			s.mu.Lock()
			s.splices++
			s.mu.Unlock()
			return str.splice(step, fl, bucket)
		},
	}, nil
}

func tierOfRate(rate float64) string {
	if rate <= browseRateCeiling {
		return TierBrowse
	}
	return TierAnalysis
}

func (s *Server) count(tier string, f func(*TierStats)) {
	s.mu.Lock()
	if t, ok := s.tiers[tier]; ok {
		f(t)
	}
	s.mu.Unlock()
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
