package huffman

import (
	"bytes"
	"testing"

	"repro/internal/stats"
)

// TestWordPrimitivesRoundTrip drives random mixed-width writes through
// WriteBits/WriteBits64 and reads them back with ReadBits/ReadBits64,
// including full 64-bit words (the zfp plane width).
func TestWordPrimitivesRoundTrip(t *testing.T) {
	r := stats.NewRNG(51)
	for trial := 0; trial < 50; trial++ {
		type item struct {
			v uint64
			n uint
		}
		var items []item
		w := NewBitWriter(0)
		for k := 0; k < 200; k++ {
			n := uint(1 + r.Intn(64))
			v := (uint64(r.Intn(1<<31))<<33 | uint64(r.Intn(1<<31))) & (1<<n - 1)
			items = append(items, item{v, n})
			w.WriteBits64(v, n)
		}
		rd := NewBitReader(w.Bytes())
		for i, it := range items {
			got, err := rd.ReadBits64(it.n)
			if err != nil {
				t.Fatalf("trial %d item %d: %v", trial, i, err)
			}
			if got != it.v {
				t.Fatalf("trial %d item %d: wrote %x/%d read %x", trial, i, it.v, it.n, got)
			}
		}
	}
}

func TestWriteBits64MatchesBitByBit(t *testing.T) {
	// A 64-bit word written at once must produce the same stream as 64
	// single-bit writes.
	vals := []uint64{0, ^uint64(0), 0x8000000000000001, 0xAAAAAAAAAAAAAAAA, 0x0123456789ABCDEF}
	for _, v := range vals {
		a := NewBitWriter(0)
		a.WriteBits64(v, 64)
		b := NewBitWriter(0)
		for i := 63; i >= 0; i-- {
			b.WriteBit(uint(v>>uint(i)) & 1)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("word %x: word write diverges from bit writes", v)
		}
	}
}

func TestReadUnary(t *testing.T) {
	// Runs of every length, with and without terminators, across byte
	// boundaries.
	w := NewBitWriter(0)
	runs := []int{0, 1, 7, 8, 9, 13, 40, 63}
	for _, z := range runs {
		w.WriteBits64(1, uint(z+1)) // z zeros then a 1
	}
	w.WriteBits64(0, 20) // tail of zeros with no terminator
	r := NewBitReader(w.Bytes())
	for _, z := range runs {
		zeros, saw, err := r.ReadUnary(64)
		if err != nil {
			t.Fatal(err)
		}
		if !saw || zeros != uint(z) {
			t.Fatalf("run %d: got zeros=%d saw=%v", z, zeros, saw)
		}
	}
	// max smaller than the run: consumes exactly max zeros.
	zeros, saw, err := r.ReadUnary(5)
	if err != nil || saw || zeros != 5 {
		t.Fatalf("bounded run: zeros=%d saw=%v err=%v", zeros, saw, err)
	}
	// The remaining 15 zeros of the tail plus the byte-padding zeros: an
	// unbounded read must run out of buffer, like bit-by-bit reads would.
	if _, _, err := r.ReadUnary(64); err != ErrOutOfBits {
		t.Fatalf("expected ErrOutOfBits past the stream end, got %v", err)
	}
	// ReadUnary(0) touches nothing.
	r2 := NewBitReader([]byte{0xFF})
	zeros, saw, err = r2.ReadUnary(0)
	if zeros != 0 || saw || err != nil {
		t.Fatalf("ReadUnary(0): zeros=%d saw=%v err=%v", zeros, saw, err)
	}
	if b, _ := r2.ReadBit(); b != 1 {
		t.Fatal("ReadUnary(0) consumed a bit")
	}
}

func TestSeekBitAndBitPos(t *testing.T) {
	w := NewBitWriter(0)
	for i := 0; i < 300; i++ {
		w.WriteBits(uint64(i)&0x7F, 7)
	}
	buf := w.Bytes()
	r := NewBitReader(buf)
	for _, off := range []int{0, 1, 7, 8, 64, 65, 300, 2093} {
		if err := r.SeekBit(off); err != nil {
			t.Fatalf("seek %d: %v", off, err)
		}
		if got := r.BitPos(); got != off {
			t.Fatalf("seek %d: BitPos %d", off, got)
		}
		item := off / 7
		skip := off % 7
		if skip != 0 {
			if err := r.Skip(7 - skip); err != nil {
				t.Fatal(err)
			}
			item++
		}
		v, err := r.ReadBits(7)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(item) & 0x7F; v != want {
			t.Fatalf("after seek %d: read %d want %d", off, v, want)
		}
	}
	if err := r.SeekBit(len(buf)*8 + 1); err == nil {
		t.Error("seek past end accepted")
	}
	if err := r.SeekBit(-1); err == nil {
		t.Error("negative seek accepted")
	}
}

func TestAppendBitRangeSplice(t *testing.T) {
	// Splicing arbitrary bit ranges of two streams must equal writing the
	// bits directly — the invariant the zfp chunk splice depends on.
	r := stats.NewRNG(52)
	for trial := 0; trial < 30; trial++ {
		nbitsA := 1 + r.Intn(500)
		nbitsB := 1 + r.Intn(500)
		bitsA := make([]uint, nbitsA)
		bitsB := make([]uint, nbitsB)
		wa := NewBitWriter(0)
		wb := NewBitWriter(0)
		for i := range bitsA {
			bitsA[i] = uint(r.Intn(2))
			wa.WriteBit(bitsA[i])
		}
		for i := range bitsB {
			bitsB[i] = uint(r.Intn(2))
			wb.WriteBit(bitsB[i])
		}
		fromA := r.Intn(nbitsA)
		lenA := r.Intn(nbitsA - fromA + 1)
		spliced := NewBitWriter(0)
		spliced.AppendBitRange(wa.Bytes(), fromA, lenA)
		spliced.AppendBitRange(wb.Bytes(), 0, nbitsB)
		direct := NewBitWriter(0)
		for _, b := range bitsA[fromA : fromA+lenA] {
			direct.WriteBit(b)
		}
		for _, b := range bitsB {
			direct.WriteBit(b)
		}
		if !bytes.Equal(spliced.Bytes(), direct.Bytes()) {
			t.Fatalf("trial %d: splice diverges from direct writes", trial)
		}
	}
}

func TestWriterReset(t *testing.T) {
	w := NewBitWriter(0)
	w.WriteBits(0x5A5, 12)
	first := append([]byte(nil), w.Bytes()...)
	w.Reset()
	w.WriteBits(0x5A5, 12)
	if !bytes.Equal(first, w.Bytes()) {
		t.Error("reset writer produced a different stream")
	}
	if w.BitLen() != 16 { // 12 bits padded to 2 bytes by Bytes
		t.Errorf("BitLen %d after Bytes", w.BitLen())
	}
}

func TestReaderReset(t *testing.T) {
	r := NewBitReader([]byte{0xF0})
	if v, _ := r.ReadBits(4); v != 0xF {
		t.Fatalf("read %x", v)
	}
	r.Reset([]byte{0x0F})
	if got := r.BitPos(); got != 0 {
		t.Fatalf("BitPos %d after Reset", got)
	}
	if v, _ := r.ReadBits(8); v != 0x0F {
		t.Fatal("Reset did not re-target the buffer")
	}
}
