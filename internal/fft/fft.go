// Package fft implements the discrete Fourier transforms behind the
// power-spectrum analysis (paper Sec. 3.3). It provides an iterative
// radix-2 complex FFT for power-of-two lengths, a Bluestein chirp-z fallback
// for arbitrary lengths, and a cache-friendly, goroutine-parallel 3-D
// transform. Everything is stdlib-only.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Plan caches the twiddle factors and bit-reversal permutation for a fixed
// transform length. Plans are safe for concurrent use once built.
type Plan struct {
	n int
	// pow2 path
	rev     []int
	twiddle []complex128 // forward twiddles, length n/2
	// Bluestein path (nil for powers of two)
	bluestein *bluesteinPlan
}

type bluesteinPlan struct {
	m     int          // power-of-two convolution length ≥ 2n−1
	sub   *Plan        // radix-2 plan of length m
	chirp []complex128 // w[k] = exp(iπk²/n), length n
	bfft  []complex128 // FFT of the chirp kernel, length m
}

// NewPlan builds a plan for transforms of length n ≥ 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("fft: invalid length %d", n)
	}
	p := &Plan{n: n}
	if isPow2(n) {
		p.rev = bitRevTable(n)
		p.twiddle = make([]complex128, n/2)
		for k := range p.twiddle {
			angle := -2 * math.Pi * float64(k) / float64(n)
			p.twiddle[k] = cmplx.Exp(complex(0, angle))
		}
		return p, nil
	}
	// Bluestein: X[k] = w*[k] · Σ_j x[j]·w*[j] · w[k−j], a convolution that
	// we evaluate with a power-of-two FFT of length m ≥ 2n−1.
	bp := &bluesteinPlan{}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	bp.m = m
	sub, err := NewPlan(m)
	if err != nil {
		return nil, err
	}
	bp.sub = sub
	bp.chirp = make([]complex128, n)
	for k := 0; k < n; k++ {
		// Use k² mod 2n to avoid precision loss for large k.
		angle := math.Pi * float64((int64(k)*int64(k))%int64(2*n)) / float64(n)
		bp.chirp[k] = cmplx.Exp(complex(0, angle))
	}
	b := make([]complex128, m)
	b[0] = bp.chirp[0]
	for k := 1; k < n; k++ {
		b[k] = bp.chirp[k]
		b[m-k] = bp.chirp[k]
	}
	if err := sub.Forward(b); err != nil {
		return nil, err
	}
	bp.bfft = b
	p.bluestein = bp
	return p, nil
}

// Len returns the transform length.
func (p *Plan) Len() int { return p.n }

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func bitRevTable(n int) []int {
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	rev := make([]int, n)
	for i := range rev {
		rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	return rev
}

// Forward computes the in-place forward DFT of data (length must equal the
// plan length). No normalization is applied.
func (p *Plan) Forward(data []complex128) error { return p.transform(data, false) }

// Inverse computes the in-place inverse DFT with 1/n normalization.
func (p *Plan) Inverse(data []complex128) error { return p.transform(data, true) }

func (p *Plan) transform(data []complex128, inverse bool) error {
	if len(data) != p.n {
		return fmt.Errorf("fft: data length %d != plan length %d", len(data), p.n)
	}
	if p.n == 1 {
		return nil
	}
	if p.bluestein != nil {
		return p.bluesteinTransform(data, inverse)
	}
	p.radix2(data, inverse)
	if inverse {
		inv := complex(1/float64(p.n), 0)
		for i := range data {
			data[i] *= inv
		}
	}
	return nil
}

// radix2 is the iterative Cooley–Tukey butterfly on a power-of-two length.
func (p *Plan) radix2(data []complex128, inverse bool) {
	n := p.n
	for i, j := range p.rev {
		if i < j {
			data[i], data[j] = data[j], data[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[tw]
				if inverse {
					w = cmplx.Conj(w)
				}
				t := w * data[k+half]
				data[k+half] = data[k] - t
				data[k] = data[k] + t
				tw += step
			}
		}
	}
}

func (p *Plan) bluesteinTransform(data []complex128, inverse bool) error {
	bp := p.bluestein
	n, m := p.n, bp.m
	a := make([]complex128, m)
	if inverse {
		for j := 0; j < n; j++ {
			a[j] = data[j] * bp.chirp[j]
		}
	} else {
		for j := 0; j < n; j++ {
			a[j] = data[j] * cmplx.Conj(bp.chirp[j])
		}
	}
	if err := bp.sub.Forward(a); err != nil {
		return err
	}
	if inverse {
		// Convolve with the conjugate kernel for the inverse transform.
		for i := range a {
			a[i] *= cmplx.Conj(bp.bfft[i])
		}
	} else {
		for i := range a {
			a[i] *= bp.bfft[i]
		}
	}
	if err := bp.sub.Inverse(a); err != nil {
		return err
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for k := 0; k < n; k++ {
			data[k] = a[k] * bp.chirp[k] * inv
		}
	} else {
		for k := 0; k < n; k++ {
			data[k] = a[k] * cmplx.Conj(bp.chirp[k])
		}
	}
	return nil
}

// DFT computes the naive O(n²) forward transform; it exists as the
// reference implementation the tests compare against.
func DFT(data []complex128) []complex128 {
	n := len(data)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += data[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}
