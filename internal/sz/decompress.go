package sz

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/huffman"
)

// ErrCorrupt is wrapped by all decompression-time integrity failures.
var ErrCorrupt = errors.New("sz: corrupt compressed stream")

// Decompress reconstructs the field from a Compressed brick.
func Decompress(c *Compressed) (*grid.Field3D, error) {
	data, err := DecompressSlice(c)
	if err != nil {
		return nil, err
	}
	return &grid.Field3D{Nx: c.Nx, Ny: c.Ny, Nz: c.Nz, Data: data}, nil
}

// DecompressSlice reconstructs the flat brick values.
func DecompressSlice(c *Compressed) ([]float32, error) {
	n := c.N()
	if n <= 0 {
		return nil, fmt.Errorf("%w: empty brick", ErrCorrupt)
	}
	radius := c.Opt.radius()
	runBase := 2 * radius
	tokens, err := huffman.Decompress(c.codeStream)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	symbols, err := rleDecode(tokens, radius, runBase, n)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	eb := effectiveABSBound(c.Opt)
	var out []float32
	if c.Opt.QuantizeBeforePredict {
		out, err = reconstructLattice(symbols, c, eb)
	} else {
		out, err = reconstructDirect(symbols, c, eb)
	}
	if err != nil {
		return nil, err
	}
	if c.Opt.Mode == PWREL {
		for i, v := range out {
			out[i] = float32(math.Exp(float64(v)))
		}
	}
	return out, nil
}

func reconstructDirect(symbols []int, c *Compressed, eb float64) ([]float32, error) {
	nx, ny, nz := c.Nx, c.Ny, c.Nz
	radius := c.Opt.radius()
	twoEB := 2 * eb
	recon := make([]float32, len(symbols))
	outPos := 0
	idx := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				s := symbols[idx]
				if s == 0 {
					v, pos, err := readFloat32(c.outliers, outPos)
					if err != nil {
						return nil, err
					}
					recon[idx] = v
					outPos = pos
				} else {
					pred := predict(recon, nx, ny, x, y, z, idx, c.Opt.Predictor)
					q := s - radius
					recon[idx] = float32(pred + twoEB*float64(q))
				}
				idx++
			}
		}
	}
	if outPos != len(c.outliers) {
		return nil, fmt.Errorf("%w: %d unread outlier bytes", ErrCorrupt, len(c.outliers)-outPos)
	}
	return recon, nil
}

func reconstructLattice(symbols []int, c *Compressed, eb float64) ([]float32, error) {
	nx, ny, nz := c.Nx, c.Ny, c.Nz
	radius := c.Opt.radius()
	twoEB := 2 * eb
	lat := make([]int64, len(symbols))
	out := make([]float32, len(symbols))
	verbatim := make([]bool, len(symbols))
	outPos := 0
	idx := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				s := symbols[idx]
				if s == 0 {
					v, pos, err := readFloat32(c.outliers, outPos)
					if err != nil {
						return nil, err
					}
					// Re-derive the encoder's lattice coordinate from the
					// verbatim value so neighbour prediction stays exact.
					lat[idx] = int64(math.Floor(float64(v)/twoEB + 0.5))
					out[idx] = v
					verbatim[idx] = true
					outPos = pos
				} else {
					lat[idx] = predictInt(lat, nx, ny, x, y, z) + int64(s-radius)
				}
				idx++
			}
		}
	}
	if outPos != len(c.outliers) {
		return nil, fmt.Errorf("%w: %d unread outlier bytes", ErrCorrupt, len(c.outliers)-outPos)
	}
	for i, q := range lat {
		if !verbatim[i] {
			out[i] = float32(twoEB * float64(q))
		}
	}
	return out, nil
}

func readFloat32(buf []byte, pos int) (float32, int, error) {
	if pos+4 > len(buf) {
		return 0, 0, fmt.Errorf("%w: outlier stream truncated", ErrCorrupt)
	}
	b := uint32(buf[pos]) | uint32(buf[pos+1])<<8 | uint32(buf[pos+2])<<16 | uint32(buf[pos+3])<<24
	return math.Float32frombits(b), pos + 4, nil
}
