package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/apierr"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/optimizer"
)

// In situ path (paper Secs. 3.6, 4.3). Each MPI rank owns a set of
// partitions; the full protocol per snapshot is:
//
//  1. every rank extracts its partitions' features (mean |value|, and for
//     density fields the boundary-cell count);
//  2. one collective produces the global mean feature → the anchor C_a;
//  3. every rank computes its partitions' error bounds locally
//     (eb_m = ebAvg·(C_m/C_a)^γ, clamped to [ebAvg/4, 4·ebAvg] — the in
//     situ path uses the paper's static clamp without the global
//     mean-preserving rescale, which would need a second collective);
//  4. for density fields one more collective sums the predicted mass fault
//     and a shared downscale enforces the halo budget (Eq. 11);
//  5. every rank compresses its partitions.
//
// Reductions are evaluated in ascending *partition* order, not rank order:
// each rank gathers (partitionID, value) pairs and every rank folds the
// same ID-ordered sequence. That makes the global sums — and therefore
// every error bound and every compressed byte — invariant not only to
// scheduling but to the rank count and to which rank owns which partition,
// which is what lets a post-failure rebalanced run reproduce the healthy
// run's archive bit-for-bit.
//
// The per-phase wall times are recorded so the Sec. 4.3 overhead experiment
// can report feature-extraction and optimization cost relative to
// compression cost.

// InSituHalo carries the halo budget for the in situ path.
type InSituHalo struct {
	TBoundary  float64
	RefEB      float64
	MassBudget float64
}

// InSituOptions configures one in situ compression.
type InSituOptions struct {
	// Ranks is the number of simulated MPI ranks (default: number of
	// partitions, capped at 64).
	Ranks int
	// AvgEB is the quality budget.
	AvgEB float64
	// Halo optionally enforces the halo-mass budget.
	Halo *InSituHalo
}

// InSituStats reports what happened inside the ranks.
type InSituStats struct {
	Ranks int
	// Critical-path (max over ranks) wall times per phase.
	FeatureSeconds  float64
	OptimizeSeconds float64
	CompressSeconds float64
	// Collectives executed on the communicator.
	Collectives int64
	// EBs is the final per-partition assignment.
	EBs []float64
	// HaloScale is the downscale applied by the halo budget (1 = none).
	HaloScale float64
}

// FeatureOverhead returns feature+optimization time as a fraction of
// compression time (the paper's ~1 % claim).
func (s *InSituStats) FeatureOverhead() float64 {
	if s.CompressSeconds == 0 {
		return 0
	}
	return (s.FeatureSeconds + s.OptimizeSeconds) / s.CompressSeconds
}

// NumPartitions reports how many partitions the engine's configured brick
// dimension tiles the field into — the unit of distribution for the
// sharded in situ path.
func (e *Engine) NumPartitions(f *grid.Field3D) (int, error) {
	p, err := e.partitioner(f)
	if err != nil {
		return 0, err
	}
	return p.Count(), nil
}

// AssignPartitions deterministically shards nParts partitions across the
// alive ranks: partition i goes to alive[i mod len(alive)] (alive sorted
// ascending first). With all ranks alive this is the familiar round-robin
// by rank; after a failure the survivors' shares are recomputed from the
// same rule, so every rank derives the identical assignment with no
// negotiation. Returns the owned partition IDs (ascending) per rank.
func AssignPartitions(nParts int, alive []int) map[int][]int {
	ranks := append([]int(nil), alive...)
	sort.Ints(ranks)
	owned := make(map[int][]int, len(ranks))
	for _, r := range ranks {
		owned[r] = nil
	}
	if len(ranks) == 0 {
		return owned
	}
	for i := 0; i < nParts; i++ {
		r := ranks[i%len(ranks)]
		owned[r] = append(owned[r], i)
	}
	return owned
}

// RankShard is one rank's share of an in situ compression: the partitions
// it owned, the error bounds it assigned them, and the frames it produced,
// all parallel to Owned (ascending partition IDs).
type RankShard struct {
	Owned  []int
	EBs    []float64
	Frames []codec.Frame
	// HaloScale is the shared downscale applied by the halo budget
	// (1 = none); identical on every rank.
	HaloScale float64
	// Per-phase wall times on this rank.
	FeatureSeconds  float64
	OptimizeSeconds float64
	CompressSeconds float64
}

// CompressInSituRank runs one rank's side of the in situ protocol over an
// explicit communicator: feature extraction for the owned partitions, the
// ID-ordered global-mean collective, local error-bound optimization, the
// optional halo-budget collective, and compression of the owned
// partitions. The same function serves the in-process world (mpi.Run) and
// the TCP transport (internal/mpinet) — the communicator is the only
// difference.
//
// Collective failures (a dead peer rank) surface as the transport's typed
// *apierr.RankFailedError; the caller owns retry/rebalance policy.
func (e *Engine) CompressInSituRank(ctx context.Context, c *mpi.Comm, f *grid.Field3D, cal *Calibration, opt InSituOptions, owned []int) (*RankShard, error) {
	if cal == nil || cal.Model == nil {
		return nil, fmt.Errorf("core: %w: nil calibration", apierr.ErrBadConfig)
	}
	if opt.AvgEB <= 0 {
		return nil, fmt.Errorf("core: %w: AvgEB must be positive", apierr.ErrBadConfig)
	}
	p, err := e.partitioner(f)
	if err != nil {
		return nil, err
	}
	parts := p.Partitions()
	nParts := len(parts)
	for _, pi := range owned {
		if pi < 0 || pi >= nParts {
			return nil, fmt.Errorf("core: %w: owned partition %d outside [0,%d)", apierr.ErrBadConfig, pi, nParts)
		}
	}

	rm := cal.Model
	gamma := optimizer.AllocationExponent(rm.Exponent, e.cfg.Strategy)
	lo := opt.AvgEB / e.cfg.ClampFactor
	hi := opt.AvgEB * e.cfg.ClampFactor

	sh := &RankShard{Owned: owned, HaloScale: 1}

	// Phase 1: feature extraction. The rank scans its own sub-volume in
	// place (no brick copy — the simulation already owns the data) and
	// accumulates mean |value| and the threshold-band count in a single
	// fused pass, which is exactly the paper's in situ cost.
	if err := c.Barrier(); err != nil { // align phase starts so timers measure work, not skew
		return nil, err
	}
	t0 := time.Now()
	feats := make([]float64, len(owned))
	bcells := make([]float64, len(owned))
	scratch := e.getScratch()
	defer e.putScratch(scratch)
	for j, pi := range owned {
		part := parts[pi]
		var s float64
		n := 0
		var bandLo, bandHi float32
		if opt.Halo != nil {
			bandLo = float32(opt.Halo.TBoundary - opt.Halo.RefEB)
			bandHi = float32(opt.Halo.TBoundary + opt.Halo.RefEB)
		}
		for z := part.Z0; z < part.Z1; z++ {
			for y := part.Y0; y < part.Y1; y++ {
				base := f.Index(part.X0, y, z)
				row := f.Data[base : base+part.X1-part.X0]
				for _, v := range row {
					if v < 0 {
						s -= float64(v)
					} else {
						s += float64(v)
					}
					if opt.Halo != nil && v >= bandLo && v < bandHi {
						n++
					}
				}
			}
		}
		feats[j] = s / float64(part.Len())
		bcells[j] = float64(n)
	}
	sh.FeatureSeconds = time.Since(t0).Seconds()

	// Phase 2: the global mean feature via one ID-ordered collective,
	// local error-bound computation, optional halo collective.
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	t1 := time.Now()
	globalSum, err := reduceByPartition(c, nParts, owned, feats)
	if err != nil {
		return nil, err
	}
	globalMean := globalSum / float64(nParts)
	ca := rm.Cm(globalMean)
	myEBs := make([]float64, len(owned))
	for j := range owned {
		eb := opt.AvgEB * math.Pow(rm.Cm(feats[j])/ca, gamma)
		if eb < lo {
			eb = lo
		}
		if eb > hi {
			eb = hi
		}
		myEBs[j] = eb
	}
	if opt.Halo != nil {
		faults := make([]float64, len(owned))
		for j := range owned {
			nbc := bcells[j] * myEBs[j] / opt.Halo.RefEB
			faults[j] = nbc / 4
		}
		faultSum, err := reduceByPartition(c, nParts, owned, faults)
		if err != nil {
			return nil, err
		}
		est := opt.Halo.TBoundary * faultSum
		if est > opt.Halo.MassBudget && est > 0 {
			sh.HaloScale = opt.Halo.MassBudget / est
			for j := range myEBs {
				myEBs[j] *= sh.HaloScale
			}
		}
	}
	sh.EBs = myEBs
	sh.OptimizeSeconds = time.Since(t1).Seconds()

	// Phase 3: compression of owned partitions.
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	t2 := time.Now()
	sh.Frames = make([]codec.Frame, len(owned))
	for j, pi := range owned {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: in situ compression: %w", err)
		}
		part := parts[pi]
		data := e.brick(scratch, f, part)
		nx, ny, nz := part.Dims()
		cc, err := e.cdc.Compress(data, nx, ny, nz, e.codecOptions(myEBs[j]), scratch)
		if err != nil {
			return nil, fmt.Errorf("core: rank %d partition %d: %w", c.Rank(), pi, err)
		}
		sh.Frames[j] = cc
	}
	sh.CompressSeconds = time.Since(t2).Seconds()
	return sh, nil
}

// reduceByPartition sums one contribution per owned partition across all
// ranks, folding in ascending partition-ID order so the float64 result is
// identical for every rank layout. Implemented as an allgather of
// (partitionID, value) pairs followed by the same deterministic local
// fold on every rank.
func reduceByPartition(c *mpi.Comm, nParts int, owned []int, vals []float64) (float64, error) {
	pairs := make([]float64, 0, 2*len(owned))
	for j, pi := range owned {
		pairs = append(pairs, float64(pi), vals[j])
	}
	all, err := c.AllgatherSlice(pairs)
	if err != nil {
		return 0, err
	}
	if len(all)%2 != 0 || len(all)/2 != nParts {
		return 0, fmt.Errorf("core: partition reduce gathered %d pairs, want %d", len(all)/2, nParts)
	}
	byID := make([]float64, nParts)
	seen := make([]bool, nParts)
	for i := 0; i < len(all); i += 2 {
		id := int(all[i])
		if id < 0 || id >= nParts || seen[id] {
			return 0, fmt.Errorf("core: partition reduce: bad or duplicate partition id %v", all[i])
		}
		seen[id] = true
		byID[id] = all[i+1]
	}
	var sum float64
	for _, v := range byID {
		sum += v
	}
	return sum, nil
}

// CompressInSitu runs the full in situ protocol over the simulated MPI
// runtime and returns the adaptively compressed field. Cancellation is
// checked between partitions inside each rank's compression loop.
func (e *Engine) CompressInSitu(ctx context.Context, f *grid.Field3D, cal *Calibration, opt InSituOptions) (*CompressedField, *InSituStats, error) {
	if cal == nil || cal.Model == nil {
		return nil, nil, fmt.Errorf("core: %w: nil calibration", apierr.ErrBadConfig)
	}
	if opt.AvgEB <= 0 {
		return nil, nil, fmt.Errorf("core: %w: AvgEB must be positive", apierr.ErrBadConfig)
	}
	p, err := e.partitioner(f)
	if err != nil {
		return nil, nil, err
	}
	nParts := p.Count()
	ranks := opt.Ranks
	if ranks <= 0 {
		ranks = nParts
		if ranks > 64 {
			ranks = 64
		}
	}
	if ranks > nParts {
		ranks = nParts
	}

	alive := make([]int, ranks)
	for r := range alive {
		alive[r] = r
	}
	assign := AssignPartitions(nParts, alive)

	ebs := make([]float64, nParts)
	compressed := make([]codec.Frame, nParts)
	shards := make([]*RankShard, ranks)
	var collectives int64

	runErr := mpi.Run(ranks, func(c *mpi.Comm) error {
		rank := c.Rank()
		sh, err := e.CompressInSituRank(ctx, c, f, cal, opt, assign[rank])
		if err != nil {
			return err
		}
		shards[rank] = sh
		for j, pi := range sh.Owned {
			ebs[pi] = sh.EBs[j]
			compressed[pi] = sh.Frames[j]
		}
		if rank == 0 {
			collectives, _ = c.Stats()
		}
		return nil
	})
	if runErr != nil {
		return nil, nil, runErr
	}

	cf := &CompressedField{
		Nx: f.Nx, Ny: f.Ny, Nz: f.Nz,
		PartitionDim: e.cfg.PartitionDim,
		Codec:        e.cfg.Codec,
		Parts:        compressed,
		partitioner:  p,
	}
	st := &InSituStats{
		Ranks:       ranks,
		Collectives: collectives,
		EBs:         ebs,
		HaloScale:   shards[0].HaloScale,
	}
	for _, sh := range shards {
		st.FeatureSeconds = math.Max(st.FeatureSeconds, sh.FeatureSeconds)
		st.OptimizeSeconds = math.Max(st.OptimizeSeconds, sh.OptimizeSeconds)
		st.CompressSeconds = math.Max(st.CompressSeconds, sh.CompressSeconds)
	}
	return cf, st, nil
}
