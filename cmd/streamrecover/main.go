// Command streamrecover salvages a torn archive v3 stream — the artifact
// a crashed adaptived -archive run leaves behind. It validates the header,
// walks the step blocks forward past the last surviving checkpoint, and
// reports what was recovered; with -o it re-serializes the salvaged prefix
// into a clean, directly openable stream.
//
// Usage:
//
//	streamrecover [-o repaired.acs] [-min-steps N] stream.acs
//
// Exit status is non-zero when nothing is recoverable or when fewer than
// -min-steps steps survive — the CI chaos-smoke assertion.
package main

import (
	"flag"
	"log"
	"os"

	"repro/adaptive"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streamrecover: ")
	var (
		out      = flag.String("o", "", "write the salvaged stream here as a clean v3 stream")
		minSteps = flag.Int("min-steps", 0, "fail unless at least this many steps are salvaged")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: streamrecover [-o repaired.acs] [-min-steps N] stream.acs")
	}
	path := flag.Arg(0)

	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}

	sr, rep, err := adaptive.RecoverStream(f, st.Size())
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	if rep.Clean {
		log.Printf("%s: clean stream, %d steps, nothing to repair", path, rep.Steps)
	} else {
		log.Printf("%s: salvaged %d steps, discarded %d torn trailing bytes", path, rep.Steps, rep.TornBytes)
	}
	if rep.Steps < *minSteps {
		log.Fatalf("%s: %d steps salvaged, need at least %d", path, rep.Steps, *minSteps)
	}

	if *out != "" {
		dst, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		n, err := sr.WriteTo(dst)
		if cerr := dst.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("writing %s: %v", *out, err)
		}
		// Prove the repair: the rewritten stream must open on the fast path.
		rf, err := os.Open(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer rf.Close()
		rst, err := rf.Stat()
		if err != nil {
			log.Fatal(err)
		}
		chk, err := adaptive.OpenStream(rf, rst.Size())
		if err != nil {
			log.Fatalf("repaired stream failed to open cleanly: %v", err)
		}
		if chk.Steps() != rep.Steps {
			log.Fatalf("repaired stream has %d steps, salvage reported %d", chk.Steps(), rep.Steps)
		}
		log.Printf("wrote %s (%d bytes, %d steps, verified)", *out, n, rep.Steps)
	}
}
