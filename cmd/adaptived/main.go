// Command adaptived serves the adaptive compressor over the network: a
// long-running HTTP/1.1 + h2c service that compresses, decompresses, and
// calibrates fields for many concurrent tenants, with per-tenant bounded
// queues (typed 429 backpressure), deficit-round-robin fair batching,
// token-bucket rate metering, and — with -adapt — a load controller that
// steps error-bound budgets up under pressure and back down when it
// clears.
//
// Usage:
//
//	adaptived -addr :8323 [-codec sz] [-partition 16] [-rel-eb 0.1] \
//	          [-queue 64] [-token-rate 0] [-batch-fields 16] [-inflight 2] \
//	          [-adapt] [-slo 250ms] [-max-level 4] [-eb-step 2]
//
// API (tenancy via the X-Tenant header; bodies are the raw-field wire
// format, 12-byte little-endian dim header + fp32 cells):
//
//	POST /v1/compress/{field}   raw field in  → archive v2 out
//	POST /v1/decompress         archive v2 in → raw field out
//	POST /v1/calibrate/{field}  raw field in  → calibration JSON out
//	GET  /v1/stats              counters and controller state
//	GET  /healthz               liveness
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/adaptive"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adaptived: ")
	var (
		addr      = flag.String("addr", ":8323", "listen address")
		codecName = flag.String("codec", "sz", "compression backend")
		partition = flag.Int("partition", 16, "partition brick dimension")
		relEB     = flag.Float64("rel-eb", 0.1, "quality budget relative to each field's mean |value|")
		queue     = flag.Int("queue", 64, "per-tenant admission queue depth")
		tokenRate = flag.Float64("token-rate", 0, "per-tenant rate limit in cells/sec (0 = unmetered)")
		batchF    = flag.Int("batch-fields", 16, "max fields coalesced into one pipeline batch")
		inflight  = flag.Int("inflight", 2, "max concurrently executing batches")
		adapt     = flag.Bool("adapt", false, "enable load-driven rate stepping")
		slo       = flag.Duration("slo", 250*time.Millisecond, "p99 latency SLO for the load controller")
		maxLevel  = flag.Int("max-level", 4, "load controller's max step level")
		ebStep    = flag.Float64("eb-step", 2, "per-level budget multiplier")
	)
	flag.Parse()

	sys, err := adaptive.New(
		adaptive.WithCodec(*codecName),
		adaptive.WithPartitionDim(*partition),
		adaptive.WithRelAvgEB(*relEB),
	)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := sys.NewServer(adaptive.ServerConfig{
		QueueDepth:         *queue,
		TokenRate:          *tokenRate,
		MaxBatchFields:     *batchF,
		MaxInflightBatches: *inflight,
		Adapt: adaptive.ServerAdaptConfig{
			Enabled:    *adapt,
			LatencySLO: *slo,
			MaxLevel:   *maxLevel,
			EBStep:     *ebStep,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	hs := adaptive.NewH2CServer(*addr, srv.Handler())
	go func() {
		log.Printf("serving on %s (codec %s, partition %d, adapt %v)", *addr, sys.Codec(), sys.PartitionDim(), *adapt)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("service close: %v", err)
	}
	st := srv.Stats()
	log.Printf("served %d requests (%d rejected, %d failed) in %d batches", st.Served, st.Rejected, st.Failed, st.Batches)
}
