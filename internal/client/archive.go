package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/archiveserve"
)

// FetchOptions selects the representation of an archived field.
type FetchOptions struct {
	// Rate asks for a spliced representation at this many bits/value
	// (0 = the stored max-rate bytes). The server quantizes the rate up
	// to its bucket and caps it at the stored rate; FetchResult.ServedRate
	// reports what was actually negotiated.
	Rate float64
	// PreviewOctaves asks for the SZ coarsened preview rung instead
	// (mutually exclusive with Rate; the server enforces it).
	PreviewOctaves int
	// ETag revalidates a previously fetched representation: when the
	// server still holds the same bytes the result comes back with
	// NotModified set and no body.
	ETag string
}

// FetchResult is one archive read.
type FetchResult struct {
	// Body is the representation (a v2 field archive for full/rate
	// fetches, a raw field wire payload for previews). Empty when
	// NotModified.
	Body []byte
	// ETag validates this representation on the next fetch.
	ETag string
	// ServedRate is the rate the server actually served (ZFP fetches).
	ServedRate float64
	// NotModified reports a 304: the caller's cached copy is current.
	NotModified bool
	// CacheHit reports whether the server answered from its
	// representation cache (no splice or decode work happened).
	CacheHit bool
}

// FetchField reads one field of one archived step. Idempotent: retried on
// transport errors and 5xx like every archive read.
func (c *Client) FetchField(ctx context.Context, stream string, step int, field string, opt FetchOptions) (*FetchResult, error) {
	path := "/v1/archive/" + url.PathEscape(stream) + "/" + strconv.Itoa(step) + "/" + url.PathEscape(field)
	q := url.Values{}
	if opt.Rate > 0 {
		q.Set("rate", strconv.FormatFloat(opt.Rate, 'g', -1, 64))
	}
	if opt.PreviewOctaves > 0 {
		q.Set("preview", strconv.Itoa(opt.PreviewOctaves))
	}
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var hdr map[string]string
	if opt.ETag != "" {
		hdr = map[string]string{"If-None-Match": opt.ETag}
	}
	res, err := c.doWith(ctx, "archive", true, http.MethodGet, path, hdr, nil,
		func(status int) bool { return status == http.StatusNotModified })
	if err != nil {
		return nil, err
	}
	out := &FetchResult{
		ETag:        res.header.Get("ETag"),
		NotModified: res.status == http.StatusNotModified,
		CacheHit:    res.header.Get("X-Cache") == "HIT",
	}
	if !out.NotModified {
		out.Body = res.body
	}
	if sr := res.header.Get("X-Served-Rate"); sr != "" {
		out.ServedRate, _ = strconv.ParseFloat(sr, 64)
	}
	return out, nil
}

// FetchManifest reads a stream's manifest. Idempotent.
func (c *Client) FetchManifest(ctx context.Context, stream string) (*archiveserve.Manifest, error) {
	res, err := c.do(ctx, "archive", true, http.MethodGet,
		"/v1/archive/"+url.PathEscape(stream)+"/manifest", nil)
	if err != nil {
		return nil, err
	}
	var m archiveserve.Manifest
	if err := json.Unmarshal(res.body, &m); err != nil {
		return nil, fmt.Errorf("client: manifest: bad response body: %w", err)
	}
	return &m, nil
}

// ListArchives lists the server's streams. Idempotent.
func (c *Client) ListArchives(ctx context.Context) ([]string, error) {
	res, err := c.do(ctx, "archive", true, http.MethodGet, "/v1/archive", nil)
	if err != nil {
		return nil, err
	}
	var out struct {
		Streams []string `json:"streams"`
	}
	if err := json.Unmarshal(res.body, &out); err != nil {
		return nil, fmt.Errorf("client: archive list: bad response body: %w", err)
	}
	return out.Streams, nil
}

// ArchiveStats reads an archive server's serving counters. Idempotent.
func (c *Client) ArchiveStats(ctx context.Context) (*archiveserve.Stats, error) {
	res, err := c.do(ctx, "archive-stats", true, http.MethodGet, "/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	var st archiveserve.Stats
	if err := json.Unmarshal(res.body, &st); err != nil {
		return nil, fmt.Errorf("client: archive stats: bad response body: %w", err)
	}
	return &st, nil
}
