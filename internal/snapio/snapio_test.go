package snapio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grid"
	"repro/internal/stats"
)

func sampleSnapshot() *Snapshot {
	r := stats.NewRNG(1)
	mk := func(n int) *grid.Field3D {
		f := grid.NewCube(n)
		for i := range f.Data {
			f.Data[i] = float32(r.NormFloat64() * 100)
		}
		return f
	}
	return &Snapshot{
		Redshift: 42.5,
		Fields: map[string]*grid.Field3D{
			"baryon_density": mk(8),
			"temperature":    mk(8),
			"velocity_x":     mk(4),
		},
	}
}

func TestRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Redshift != 42.5 {
		t.Errorf("redshift %v", got.Redshift)
	}
	if len(got.Fields) != 3 {
		t.Fatalf("fields %d", len(got.Fields))
	}
	for name, f := range s.Fields {
		g, ok := got.Fields[name]
		if !ok {
			t.Fatalf("missing field %q", name)
		}
		if !f.SameShape(g) {
			t.Fatalf("%q shape changed", name)
		}
		for i := range f.Data {
			if f.Data[i] != g.Data[i] {
				t.Fatalf("%q data changed at %d", name, i)
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.nyx")
	s := sampleSnapshot()
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Fields) != len(s.Fields) {
		t.Fatalf("fields %d", len(got.Fields))
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.nyx")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDeterministicOutput(t *testing.T) {
	s := sampleSnapshot()
	var a, b bytes.Buffer
	if err := Write(&a, s); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("output not deterministic")
	}
}

func TestWriteErrors(t *testing.T) {
	if err := Write(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	if err := Write(&bytes.Buffer{}, &Snapshot{}); err == nil {
		t.Error("empty snapshot accepted")
	}
	bad := &Snapshot{Fields: map[string]*grid.Field3D{
		"x": {Nx: 2, Ny: 2, Nz: 2, Data: make([]float32, 3)},
	}}
	if err := Write(&bytes.Buffer{}, bad); err == nil {
		t.Error("malformed field accepted")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	s := sampleSnapshot()
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	cases := map[string]func([]byte) []byte{
		"empty":        func(b []byte) []byte { return nil },
		"bad magic":    func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":  func(b []byte) []byte { b[8] = 99; return b },
		"truncated":    func(b []byte) []byte { return b[:len(b)/2] },
		"data bitflip": func(b []byte) []byte { b[len(b)-3] ^= 0x10; return b },
	}
	for name, corrupt := range cases {
		bad := corrupt(bytes.Clone(blob))
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadRejectsHugeHeader(t *testing.T) {
	// Craft a header announcing an absurd field size; Read must reject it
	// before allocating.
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.Write([]byte{1, 0, 0, 0})             // version
	buf.Write(make([]byte, 8))                // redshift
	buf.Write([]byte{1, 0, 0, 0})             // 1 field
	buf.Write([]byte{1, 0})                   // name len 1
	buf.WriteString("x")                      // name
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F}) // nx huge
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F}) // ny huge
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F}) // nz huge
	buf.Write([]byte{0, 0, 0, 0})             // crc
	if _, err := Read(&buf); err == nil {
		t.Fatal("implausible dims accepted")
	}
}

func TestWriteFileToBadPath(t *testing.T) {
	s := sampleSnapshot()
	err := WriteFile(filepath.Join(os.DevNull, "nope", "x.nyx"), s)
	if err == nil {
		t.Error("write to impossible path succeeded")
	}
}
