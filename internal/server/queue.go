package server

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/apierr"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/pipeline"
)

// jobKind selects which engine operation a queued request runs.
type jobKind uint8

const (
	jobCompress jobKind = iota
	jobDecompress
	jobCalibrate
)

// job is one admitted request waiting in (or drained from) a tenant queue.
// The handler blocks on done; the dispatcher owns the job from admission
// until exactly one jobResult is delivered.
type job struct {
	kind   jobKind
	tenant string
	field  string
	data   *grid.Field3D         // compress / calibrate input
	cf     *core.CompressedField // decompress input
	cost   int64                 // cells, the DRR and token-bucket currency
	ctx    context.Context
	queued time.Time
	done   chan jobResult // buffered 1: delivery never blocks on a gone handler
	// answered marks that a result was delivered. Only the goroutine that
	// owns the job at that stage writes it; the panic backstop in execute
	// reads it to fail exactly the jobs still unanswered (done is buffered
	// 1, so a second send to an answered job would block forever).
	answered bool
}

type jobResult struct {
	archive []byte
	field   *grid.Field3D
	cal     *core.Calibration
	stats   *pipeline.FieldStats
	level   int
	scale   float64
	err     error
}

// tenantQ is one tenant's bounded FIFO admission queue plus its deficit
// round-robin and token-bucket accounts. All fields are guarded by
// Server.mu.
type tenantQ struct {
	name string
	jobs []*job
	// deficit is the DRR account: credited one quantum per dispatcher
	// visit while backlogged, debited by each dispatched job's cost, so
	// tenants with many small fields and tenants with few huge ones get
	// the same share of cells per round.
	deficit int64
	// tokens is the rate-limit account in cells, refilled at
	// Config.TokenRate and capped at the burst size.
	tokens     float64
	lastRefill time.Time
}

func (tq *tenantQ) refill(now time.Time, rate, burst float64) {
	if rate <= 0 {
		return
	}
	if dt := now.Sub(tq.lastRefill).Seconds(); dt > 0 {
		tq.tokens += rate * dt
		if tq.tokens > burst {
			tq.tokens = burst
		}
	}
	tq.lastRefill = now
}

// admit appends a job to its tenant's queue, registering the tenant on
// first sight. Refusals — queue full, tenant table full, shutdown — wrap
// apierr.ErrOverloaded: the request was never started and retrying after a
// backoff is safe.
func (s *Server) admit(j *job) error {
	if s.draining.Load() {
		s.m.rejected.Add(1)
		return fmt.Errorf("server: lame-duck: %w", apierr.ErrDraining)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("server: shutting down: %w", apierr.ErrOverloaded)
	}
	tq := s.tenants[j.tenant]
	if tq == nil {
		if len(s.tenants) >= s.cfg.MaxTenants {
			s.mu.Unlock()
			s.m.rejected.Add(1)
			return fmt.Errorf("server: %w: tenant table full (%d tenants)", apierr.ErrOverloaded, s.cfg.MaxTenants)
		}
		tq = &tenantQ{name: j.tenant, lastRefill: s.now(), tokens: s.cfg.TokenBurst}
		s.tenants[j.tenant] = tq
		s.order = append(s.order, tq)
	}
	if len(tq.jobs) >= s.cfg.QueueDepth {
		retryAfter := s.retryAfterLocked(tq)
		s.mu.Unlock()
		s.m.rejected.Add(1)
		return &apierr.OverloadError{Tenant: j.tenant, QueueDepth: s.cfg.QueueDepth, RetryAfterSeconds: retryAfter}
	}
	tq.jobs = append(tq.jobs, j)
	s.queued++
	s.mu.Unlock()
	s.m.accepted.Add(1)
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return nil
}

// retryAfterLocked estimates, for a refused tenant, how many seconds until
// its full queue has plausibly drained — the Retry-After a 429 carries.
// The estimate divides the tenant's queued cells (less the tokens already
// banked) by its sustainable drain rate: the token-bucket refill when the
// tenant is metered, else its fair share of the observed service
// throughput. Clamped to [1, 30]: never "now" (the queue IS full), never a
// forever that parks clients. Caller holds s.mu.
func (s *Server) retryAfterLocked(tq *tenantQ) int {
	now := s.now()
	tq.refill(now, s.cfg.TokenRate, s.cfg.TokenBurst)
	var backlog float64
	for _, j := range tq.jobs {
		backlog += float64(j.cost)
	}
	if s.cfg.TokenRate > 0 {
		backlog -= tq.tokens // cells the bucket will admit immediately
	}
	rate := s.cfg.TokenRate
	if up := now.Sub(s.start).Seconds(); up > 0 {
		if obs := float64(s.m.cells.Load()) / up / float64(max(len(s.tenants), 1)); obs > 0 && (rate <= 0 || obs < rate) {
			rate = obs
		}
	}
	if rate <= 0 || backlog <= 0 {
		return 1
	}
	secs := int(math.Ceil(backlog / rate))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// collectBatch runs one deficit-round-robin pass over the tenant queues
// and returns the next batch (nil batch, ok=true means nothing eligible
// right now; ok=false means the server is closed). Jobs whose context died
// while queued are dropped here, answered immediately, and charged to
// nobody's deficit.
func (s *Server) collectBatch() (batch []*job, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	now := s.now()
	var cells int64
	n := len(s.order)
	start := s.rrPos
	for k := 0; k < n && len(batch) < s.cfg.MaxBatchFields && cells < s.cfg.MaxBatchCells; k++ {
		tq := s.order[(start+k)%n]
		if len(tq.jobs) == 0 {
			tq.deficit = 0 // standard DRR: an idle tenant banks nothing
			continue
		}
		tq.refill(now, s.cfg.TokenRate, s.cfg.TokenBurst)
		tq.deficit += s.cfg.Quantum
		for len(tq.jobs) > 0 && len(batch) < s.cfg.MaxBatchFields && cells < s.cfg.MaxBatchCells {
			j := tq.jobs[0]
			if j.ctx.Err() != nil {
				tq.jobs = tq.jobs[1:]
				s.queued--
				s.m.canceled.Add(1)
				j.answered = true
				j.done <- jobResult{err: fmt.Errorf("server: abandoned in queue: %w", j.ctx.Err())}
				continue
			}
			if j.cost > tq.deficit {
				break
			}
			if s.cfg.TokenRate > 0 && float64(j.cost) > tq.tokens {
				break
			}
			tq.jobs = tq.jobs[1:]
			s.queued--
			tq.deficit -= j.cost
			if s.cfg.TokenRate > 0 {
				tq.tokens -= float64(j.cost)
			}
			batch = append(batch, j)
			cells += j.cost
		}
		if len(tq.jobs) == 0 {
			tq.deficit = 0
		} else if lim := s.cfg.Quantum + tq.jobs[0].cost; tq.deficit > lim {
			// A blocked tenant (token-starved, or its head job is huge) may
			// bank enough deficit to pass its head job — but no more, or a
			// long stall would convert into an unfair burst later.
			tq.deficit = lim
		}
	}
	if n > 0 {
		s.rrPos = (start + 1) % n
	}
	return batch, true
}

// dispatch is the single scheduler goroutine: it turns the tenant queues
// into batches and hands each batch to an executor goroutine, itself
// bounded by the inflight semaphore — the backpressure chain that keeps
// thousands of connections from becoming thousands of concurrent
// compressions.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		batch, ok := s.collectBatch()
		if !ok {
			s.drainPending()
			return
		}
		if len(batch) == 0 {
			s.mu.Lock()
			starved := s.queued > 0
			s.mu.Unlock()
			if starved {
				// Jobs exist but none are eligible (token-starved or
				// deficit-building): poll until refill makes progress.
				select {
				case <-s.baseCtx.Done():
				case <-s.wake:
				case <-time.After(2 * time.Millisecond):
				}
			} else {
				select {
				case <-s.baseCtx.Done():
				case <-s.wake:
				}
			}
			if s.baseCtx.Err() != nil {
				s.markClosed()
				s.drainPending()
				return
			}
			continue
		}
		s.lc.adjust(s.depth())
		select {
		case s.inflight <- struct{}{}:
		case <-s.baseCtx.Done():
			s.failBatch(batch)
			s.markClosed()
			s.drainPending()
			return
		}
		s.m.batches.Add(1)
		s.wg.Add(1)
		go func(b []*job) {
			defer s.wg.Done()
			defer func() { <-s.inflight }()
			s.execute(b)
		}(batch)
	}
}

// execute runs one batch at the load controller's current operating point.
// Compress jobs coalesce into shared pipeline steps; decompress and
// calibrate jobs run individually (each already fans out over the shared
// worker pool internally).
//
// The deferred recover is the batch-level panic backstop: execute runs in
// its own goroutine, so an unrecovered panic anywhere below (a codec bug, a
// hostile archive tripping an unchecked path) would kill the whole process.
// Instead the panic is converted into a typed 500 for every job still
// unanswered; already-answered batch-mates keep their results and the
// dispatcher never notices. (Per-field panics inside shared compression
// steps are caught a layer deeper, in pipeline.StepCompressed, so one
// tenant's panic does not even fail its batch-mates.)
func (s *Server) execute(batch []*job) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		s.m.panics.Add(1)
		err := fmt.Errorf("server: internal: batch execution panicked: %v", r)
		if perr, ok := r.(error); ok {
			err = fmt.Errorf("server: internal: batch execution panicked: %w", perr)
		}
		for _, j := range batch {
			if !j.answered {
				s.finish(j, jobResult{err: err})
			}
		}
	}()
	level, scale := s.lc.levelScale()
	var compress []*job
	for _, j := range batch {
		switch j.kind {
		case jobCompress:
			compress = append(compress, j)
		case jobDecompress:
			f, err := j.cf.Decompress(j.ctx)
			s.finish(j, jobResult{field: f, level: level, scale: scale, err: err})
		case jobCalibrate:
			cal, err := s.drv.Engine().Calibrate(j.ctx, j.data, s.calOpts)
			s.finish(j, jobResult{cal: cal, level: level, scale: scale, err: err})
		}
	}
	if len(compress) > 0 {
		s.executeCompress(compress, level, scale)
	}
}

// stepKey namespaces a field per tenant inside shared pipeline batches, so
// tenants get independent calibration state (and cannot collide on field
// names). The separator is rejected in tenant and field names at the HTTP
// boundary.
func stepKey(tenant, field string) string { return tenant + "\x1f" + field }

// executeCompress coalesces compress jobs into as few pipeline steps as
// possible. Per-field failures inside a step stay with the request that
// caused them (StepCompressed isolates them); only a same-tenant-same-field
// collision forces a job into a follow-up step, since one snapshot can
// hold each key once.
func (s *Server) executeCompress(jobs []*job, level int, scale float64) {
	rest := jobs
	for len(rest) > 0 {
		snap := make(map[string]*grid.Field3D, len(rest))
		byKey := make(map[string]*job, len(rest))
		var next []*job
		for _, j := range rest {
			key := stepKey(j.tenant, j.field)
			if _, dup := byKey[key]; dup {
				next = append(next, j)
				continue
			}
			byKey[key] = j
			snap[key] = j.data
		}
		// Contract floors: a floored tenant's effective scale is
		// min(controller scale, its cap), applied per field key so the rest
		// of the batch still runs at the controller's operating point.
		var floors map[string]float64
		for key, j := range byKey {
			if cap, ok := s.cfg.QualityFloors[j.tenant]; ok && scale > cap {
				if floors == nil {
					floors = make(map[string]float64)
				}
				floors[key] = cap
			}
		}
		// The batch runs under the server's own context, not any one job's:
		// a client abandoning its request must not cancel batch-mates
		// mid-step. Its cancellation was honored while the job was queued.
		res, err := s.drv.StepCompressed(s.baseCtx, snap, pipeline.StepOptions{BudgetScale: scale, BudgetScales: floors})
		if res != nil && err == nil {
			s.archiveStep(res.Fields)
		}
		for key, j := range byKey {
			r := jobResult{level: level, scale: scale}
			if cap, ok := floors[key]; ok {
				r.scale = cap // what this job actually compressed at
			}
			switch {
			case res != nil && res.Fields[key] != nil:
				r.archive = res.Fields[key].Bytes()
				for i := range res.Stats.Fields {
					if res.Stats.Fields[i].Name == key {
						fs := res.Stats.Fields[i]
						r.stats = &fs
					}
				}
			case res != nil && res.Errs[key] != nil:
				r.err = res.Errs[key]
			case err != nil:
				r.err = err
			default:
				r.err = fmt.Errorf("server: internal: field %q missing from step result", j.field)
			}
			s.finish(j, r)
		}
		rest = next
	}
}

// finish delivers a result, records its latency with the load controller,
// and updates the served/failed accounting.
func (s *Server) finish(j *job, r jobResult) {
	s.lc.observe(s.now().Sub(j.queued))
	if r.err != nil {
		s.m.failed.Add(1)
	} else {
		s.m.served.Add(1)
		s.m.cells.Add(uint64(j.cost))
		s.m.bytesOut.Add(uint64(len(r.archive)))
	}
	j.answered = true
	j.done <- r
}

// failBatch answers a collected-but-never-executed batch (shutdown won the
// race for an inflight slot).
func (s *Server) failBatch(batch []*job) {
	for _, j := range batch {
		s.m.failed.Add(1)
		j.answered = true
		j.done <- jobResult{err: fmt.Errorf("server: shutting down: %w", apierr.ErrOverloaded)}
	}
}

// drainPending answers every still-queued job after shutdown.
func (s *Server) drainPending() {
	s.mu.Lock()
	var pending []*job
	for _, tq := range s.order {
		pending = append(pending, tq.jobs...)
		tq.jobs = nil
	}
	s.queued = 0
	s.mu.Unlock()
	for _, j := range pending {
		s.m.failed.Add(1)
		j.answered = true
		j.done <- jobResult{err: fmt.Errorf("server: shutting down: %w", apierr.ErrOverloaded)}
	}
}
