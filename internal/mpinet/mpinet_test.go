package mpinet

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/apierr"
	"repro/internal/faultinject"
	"repro/internal/mpi"
)

// quiet returns a config with the real-time tickers disabled: every test
// below drives liveness explicitly (abrupt closes arrive as immediate read
// errors; staleness is injected via SweepStale with a fake clock), so no
// test waits on a wall-clock timer.
func quiet() Config {
	return Config{HeartbeatInterval: -1, HeartbeatTimeout: -1}
}

// startWorld spins up a coordinator plus size joined transports.
func startWorld(t *testing.T, size int, cfg Config) (*Coordinator, []*Transport) {
	t.Helper()
	coord, err := Listen("127.0.0.1:0", size, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	ts := make([]*Transport, size)
	for r := 0; r < size; r++ {
		tr, err := Join(coord.Addr(), r, size, cfg)
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
		ts[r] = tr
		t.Cleanup(func() { tr.conn.Close() })
	}
	return coord, ts
}

// runRanks executes fn concurrently on every transport and collects the
// first error.
func runRanks(ts []*Transport, fn func(c *mpi.Comm) error) error {
	errs := make([]error, len(ts))
	var wg sync.WaitGroup
	for r, tr := range ts {
		wg.Add(1)
		go func(r int, tr *Transport) {
			defer wg.Done()
			errs[r] = fn(mpi.NewComm(tr))
		}(r, tr)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// protocol runs a representative mix of collectives and returns every
// result flattened, for byte-exact comparison across transports.
func protocol(c *mpi.Comm) ([]float64, error) {
	var out []float64
	rank := float64(c.Rank())
	s, err := c.Allreduce(1e16*rank-3.7*rank*rank+1, mpi.OpSum)
	if err != nil {
		return nil, err
	}
	mn, err := c.Allreduce(rank-2, mpi.OpMin)
	if err != nil {
		return nil, err
	}
	mx, err := c.Allreduce(rank*rank, mpi.OpMax)
	if err != nil {
		return nil, err
	}
	g, err := c.Allgather(rank * 11)
	if err != nil {
		return nil, err
	}
	mine := make([]float64, c.Rank()+1)
	for i := range mine {
		mine[i] = rank + float64(i)/8
	}
	gv, err := c.AllgatherSlice(mine)
	if err != nil {
		return nil, err
	}
	b, err := c.Bcast(rank*100, c.Size()-1) // nonzero root
	if err != nil {
		return nil, err
	}
	sl, err := c.AllreduceSlice([]float64{rank, -rank, 1}, mpi.OpSum)
	if err != nil {
		return nil, err
	}
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	out = append(out, s, mn, mx, b)
	out = append(out, g...)
	out = append(out, gv...)
	out = append(out, sl...)
	return out, nil
}

// TestCollectivesMatchInProcess is the transport-equivalence contract: the
// same protocol over TCP produces bit-identical results to the in-process
// world.
func TestCollectivesMatchInProcess(t *testing.T) {
	const size = 3
	want := make([][]float64, size)
	if err := mpi.Run(size, func(c *mpi.Comm) error {
		out, err := protocol(c)
		want[c.Rank()] = out
		return err
	}); err != nil {
		t.Fatal(err)
	}

	_, ts := startWorld(t, size, quiet())
	got := make([][]float64, size)
	err := runRanks(ts, func(c *mpi.Comm) error {
		out, err := protocol(c)
		if err == nil {
			got[c.Rank()] = out
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < size; r++ {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("rank %d: %d results, want %d", r, len(got[r]), len(want[r]))
		}
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("rank %d result %d: TCP %v != in-process %v", r, i, got[r][i], want[r][i])
			}
		}
	}
}

// TestRankDeathFailsFastAndRecovers: rank 2's process "dies" (abrupt conn
// close, the TCP shadow of kill -9) while the survivors sit in a barrier.
// They must get the typed failure naming rank 2, adopt epoch 1, and then
// complete collectives among themselves — seq realigned, no hang.
func TestRankDeathFailsFastAndRecovers(t *testing.T) {
	coord, ts := startWorld(t, 3, quiet())

	// A healthy collective first, so the retry path starts from seq > 0.
	if err := runRanks(ts, func(c *mpi.Comm) error {
		_, err := c.Allreduce(1, mpi.OpSum)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		err := runRanks(ts[:2], func(c *mpi.Comm) error {
			err := c.Barrier()
			var rf *apierr.RankFailedError
			if !errors.As(err, &rf) {
				return fmt.Errorf("barrier with dead rank: %v", err)
			}
			if rf.Rank != 2 || rf.Epoch != 1 {
				return fmt.Errorf("failure = rank %d epoch %d, want rank 2 epoch 1", rf.Rank, rf.Epoch)
			}
			// Retry among survivors: everything realigns at seq 0.
			sum, err := c.Allreduce(float64(c.Rank()+1), mpi.OpSum)
			if err != nil {
				return fmt.Errorf("post-failure allreduce: %w", err)
			}
			if sum != 3 { // ranks 0,1 contribute 1+2
				return fmt.Errorf("survivor sum = %v, want 3", sum)
			}
			alive := c.Alive()
			if len(alive) != 2 || alive[0] != 0 || alive[1] != 1 {
				return fmt.Errorf("alive = %v", alive)
			}
			if c.Epoch() != 1 {
				return fmt.Errorf("epoch = %d", c.Epoch())
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}()

	time.Sleep(50 * time.Millisecond) // let the survivors enter the barrier
	ts[2].conn.Close()                // kill -9
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("survivors hung after rank death")
	}
	if got := coord.Alive(); len(got) != 2 {
		t.Fatalf("coordinator alive = %v", got)
	}
}

// TestFailureBetweenCallsIsDeliveredToNextCall: a rank that is computing
// (not blocked in a collective) when the epoch turns must still see the
// failure on its next call, so its caller aborts the step like everyone
// else.
func TestFailureBetweenCallsIsDeliveredToNextCall(t *testing.T) {
	_, ts := startWorld(t, 2, quiet())
	ts[1].conn.Close() // rank 1 dies; rank 0 is between collectives

	// Wait until rank 0's transport has adopted the new epoch.
	deadline := time.Now().Add(10 * time.Second)
	for ts[0].Epoch() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("epoch never advanced")
		}
		time.Sleep(time.Millisecond)
	}
	c := mpi.NewComm(ts[0])
	_, err := c.Allreduce(1, mpi.OpSum)
	var rf *apierr.RankFailedError
	if !errors.As(err, &rf) || rf.Rank != 1 {
		t.Fatalf("next call after between-calls failure: %v", err)
	}
	// The failure is delivered exactly once; the call after it runs in
	// the new epoch (world of one).
	sum, err := c.Allreduce(7, mpi.OpSum)
	if err != nil || sum != 7 {
		t.Fatalf("retry: sum=%v err=%v", sum, err)
	}
}

// TestHeartbeatSweepDetectsSilentRank drives the failure detector with a
// fake clock — no real timers: ranks 0 and 1 keep heartbeating, rank 2
// goes silent (one-way partition: it still reads, its writes vanish), and
// a stale sweep at fake now + timeout must fail exactly rank 2.
func TestHeartbeatSweepDetectsSilentRank(t *testing.T) {
	clk := faultinject.NewClock()
	cfg := quiet()
	cfg.HeartbeatTimeout = 2 * time.Second // used by SweepStale comparisons only
	cfg.Now = clk.Now

	coord, err := Listen("127.0.0.1:0", 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ts := make([]*Transport, 3)
	for r := 0; r < 3; r++ {
		mcfg := cfg
		if r == 2 {
			// Rank 2's writes black-hole after the handshake: the classic
			// asymmetric partition the heartbeat detector exists for.
			mcfg.Dial = func(network, addr string) (net.Conn, error) {
				conn, err := net.Dial(network, addr)
				if err != nil {
					return nil, err
				}
				return faultinject.WrapConn(conn, faultinject.ConnFaults{DropAfterWrites: 2}), nil
			}
		}
		ts[r], err = Join(coord.Addr(), r, 3, mcfg)
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
		defer ts[r].conn.Close()
	}

	// Time passes; the healthy ranks heartbeat, rank 2 is silent.
	clk.Advance(1500 * time.Millisecond)
	for r := 0; r < 2; r++ {
		if err := ts[r].write(&frame{kind: kindHeartbeat, from: r}); err != nil {
			t.Fatalf("rank %d heartbeat: %v", r, err)
		}
	}
	// Give the coordinator a moment to stamp lastSeen for ranks 0/1.
	deadlineOK := func() bool {
		coord.mu.Lock()
		defer coord.mu.Unlock()
		return clk.Now().Sub(coord.lastSeen[0]) < time.Second && clk.Now().Sub(coord.lastSeen[1]) < time.Second
	}
	deadline := time.Now().Add(10 * time.Second)
	for !deadlineOK() {
		if time.Now().After(deadline) {
			t.Fatal("heartbeats never recorded")
		}
		time.Sleep(time.Millisecond)
	}

	clk.Advance(1 * time.Second) // rank 2 now stale (2.5s > 2s); ranks 0/1 fresh (1s)
	coord.SweepStale(clk.Now())

	if got := coord.Alive(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("alive after sweep = %v, want [0 1]", got)
	}
	// Survivors learn within one collective call.
	err = runRanks(ts[:2], func(c *mpi.Comm) error {
		_, err := c.Allreduce(1, mpi.OpSum)
		var rf *apierr.RankFailedError
		if !errors.As(err, &rf) || rf.Rank != 2 {
			return fmt.Errorf("sweep not surfaced: %v", err)
		}
		if sum, err := c.Allreduce(1, mpi.OpSum); err != nil || sum != 2 {
			return fmt.Errorf("post-sweep retry: sum=%v err=%v", sum, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConnDropShapingRecovers: one rank's link is scripted to drop after
// its first contribution (faultinject.DropAfterWrites); survivors must
// recover and finish without it.
func TestConnDropShapingRecovers(t *testing.T) {
	cfg := quiet()
	coord, err := Listen("127.0.0.1:0", 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ts := make([]*Transport, 3)
	for r := 0; r < 3; r++ {
		mcfg := cfg
		if r == 1 {
			mcfg.Dial = func(network, addr string) (net.Conn, error) {
				conn, err := net.Dial(network, addr)
				if err != nil {
					return nil, err
				}
				// hello + one contribute, then the link dies.
				return faultinject.WrapConn(conn, faultinject.ConnFaults{DropAfterWrites: 2}), nil
			}
		}
		ts[r], err = Join(coord.Addr(), r, 3, mcfg)
		if err != nil {
			t.Fatalf("rank %d join: %v", r, err)
		}
		defer ts[r].conn.Close()
	}

	err = runRanks(ts, func(c *mpi.Comm) error {
		_, err := c.Allreduce(1, mpi.OpSum)
		if c.Rank() == 1 {
			// The shaped rank must see an error (its link died), typed as
			// a rank failure (it lost the coordinator).
			if !errors.Is(err, apierr.ErrRankFailed) {
				return fmt.Errorf("shaped rank err = %v", err)
			}
			return nil
		}
		var rf *apierr.RankFailedError
		if !errors.As(err, &rf) || rf.Rank != 1 {
			return fmt.Errorf("survivor err = %v, want rank 1 failure", err)
		}
		sum, err := c.Allreduce(float64(c.Rank()+1), mpi.OpSum)
		if err != nil || sum != 4 { // ranks 0,2 contribute 1+3
			return fmt.Errorf("survivor retry: sum=%v err=%v", sum, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllreduceSliceMismatchIsRecoverableOverTCP mirrors the in-process
// contract: a length mismatch errors every rank without poisoning
// membership.
func TestAllreduceSliceMismatchIsRecoverableOverTCP(t *testing.T) {
	_, ts := startWorld(t, 3, quiet())
	err := runRanks(ts, func(c *mpi.Comm) error {
		_, err := c.AllreduceSlice(make([]float64, 1+c.Rank()), mpi.OpSum)
		if err == nil {
			return errors.New("length mismatch accepted")
		}
		if errors.Is(err, apierr.ErrRankFailed) {
			return fmt.Errorf("mismatch mis-typed as rank failure: %v", err)
		}
		// Membership intact; the next collective works.
		out, err := c.AllreduceSlice([]float64{float64(c.Rank())}, mpi.OpMax)
		if err != nil || len(out) != 1 || out[0] != 2 {
			return fmt.Errorf("post-mismatch reduce: %v %v", out, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestP2PRouting: sends route through the coordinator; Recv from a rank
// that dies fails typed instead of blocking forever.
func TestP2PRouting(t *testing.T) {
	_, ts := startWorld(t, 3, quiet())
	err := runRanks(ts, func(c *mpi.Comm) error {
		switch c.Rank() {
		case 0:
			if err := c.Send(1, []float64{42, 43}); err != nil {
				return err
			}
			return c.Send(1, []float64{44})
		case 1:
			m1, err := c.Recv(0)
			if err != nil {
				return err
			}
			m2, err := c.Recv(0)
			if err != nil {
				return err
			}
			if len(m1) != 2 || m1[0] != 42 || m1[1] != 43 || len(m2) != 1 || m2[0] != 44 {
				return fmt.Errorf("recv %v %v", m1, m2)
			}
			return nil
		default:
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvFromDeadRankFails(t *testing.T) {
	_, ts := startWorld(t, 2, quiet())
	done := make(chan error, 1)
	go func() {
		_, err := mpi.NewComm(ts[0]).Recv(1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	ts[1].conn.Close() // rank 1 dies while rank 0 blocks in Recv
	select {
	case err := <-done:
		var rf *apierr.RankFailedError
		if !errors.As(err, &rf) || rf.Rank != 1 {
			t.Fatalf("recv from dead rank: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("recv hung on dead sender")
	}
}

// TestCoordinatorLossIsTerminal: members that lose the coordinator report
// a typed failure forever — the run cannot continue, but it never hangs.
func TestCoordinatorLossIsTerminal(t *testing.T) {
	coord, ts := startWorld(t, 2, quiet())
	coord.Close()
	err := runRanks(ts, func(c *mpi.Comm) error {
		deadline := time.Now().Add(10 * time.Second)
		for {
			_, err := c.Allreduce(1, mpi.OpSum)
			if errors.Is(err, apierr.ErrRankFailed) {
				// Terminal: stays failed.
				if _, err2 := c.Allgather(1); !errors.Is(err2, apierr.ErrRankFailed) {
					return fmt.Errorf("second call after coordinator loss: %v", err2)
				}
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("coordinator loss never surfaced (last err %v)", err)
			}
			time.Sleep(time.Millisecond)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGoodbyeIsNotAFailure: clean Close keeps the epoch at 0 and fails
// nothing.
func TestGoodbyeIsNotAFailure(t *testing.T) {
	coord, ts := startWorld(t, 2, quiet())
	if err := runRanks(ts, func(c *mpi.Comm) error {
		_, err := c.Allreduce(1, mpi.OpSum)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	ts[1].Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if alive := coord.Alive(); len(alive) == 1 && alive[0] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goodbye not processed: alive = %v", coord.Alive())
		}
		time.Sleep(time.Millisecond)
	}
	if coord.Epoch() != 0 {
		t.Fatalf("clean leave bumped epoch to %d", coord.Epoch())
	}
	// The remaining rank still operates (world of one).
	if sum, err := mpi.NewComm(ts[0]).Allreduce(5, mpi.OpSum); err != nil || sum != 5 {
		t.Fatalf("post-goodbye collective: sum=%v err=%v", sum, err)
	}
}

// --- Wire format ----------------------------------------------------------

func TestFrameRoundTrip(t *testing.T) {
	f := &frame{
		kind:  kindContribute,
		epoch: 3,
		seq:   77,
		from:  2,
		aux:   packColl(collReduce, int(mpi.OpMax), 0),
		vec:   []float64{1.5, -2.25, 1e300},
		extra: []byte("hello"),
	}
	buf, err := appendFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.kind != f.kind || got.epoch != f.epoch || got.seq != f.seq || got.from != f.from || got.aux != f.aux {
		t.Fatalf("header mismatch: %+v vs %+v", got, f)
	}
	if len(got.vec) != 3 || got.vec[2] != 1e300 {
		t.Fatalf("vec %v", got.vec)
	}
	if string(got.extra) != "hello" {
		t.Fatalf("extra %q", got.extra)
	}
	k, op, _ := unpackColl(got.aux)
	if k != collReduce || op != int(mpi.OpMax) {
		t.Fatalf("unpacked %d %d", k, op)
	}
}

func TestFrameCRCRejectsCorruption(t *testing.T) {
	buf, err := appendFrame(nil, &frame{kind: kindResult, vec: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 8; i < len(buf); i++ { // every payload byte
		mut := bytes.Clone(buf)
		mut[i] ^= 0x40
		if _, err := readFrame(bytes.NewReader(mut)); !errors.Is(err, apierr.ErrCorruptArchive) {
			t.Fatalf("corruption at byte %d accepted (err=%v)", i, err)
		}
	}
}

func TestFrameRejectsHostileLength(t *testing.T) {
	hostile := make([]byte, 8)
	hostile[0] = 0xFF // payload length ~4 GiB
	hostile[1] = 0xFF
	hostile[2] = 0xFF
	hostile[3] = 0xFF
	if _, err := readFrame(bytes.NewReader(hostile)); !errors.Is(err, apierr.ErrCorruptArchive) {
		t.Fatalf("hostile length accepted: %v", err)
	}
	// Truncated-but-plausible: declared length larger than stream.
	buf, _ := appendFrame(nil, &frame{kind: kindHeartbeat})
	if _, err := readFrame(bytes.NewReader(buf[:len(buf)-1])); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// TestGarbageHandshakeRejected: random bytes at the coordinator port must
// not corrupt the world.
func TestGarbageHandshakeRejected(t *testing.T) {
	coord, ts := startWorld(t, 2, quiet())
	conn, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	conn.Close()
	// The real members are unaffected.
	if err := runRanks(ts, func(c *mpi.Comm) error {
		sum, err := c.Allreduce(1, mpi.OpSum)
		if err != nil || sum != 2 {
			return fmt.Errorf("sum=%v err=%v", sum, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if coord.Epoch() != 0 {
		t.Fatalf("garbage conn bumped epoch to %d", coord.Epoch())
	}
}

// TestRealHeartbeatsEndToEnd leaves the real tickers on with tight
// timings and verifies a kill is detected within the heartbeat timeout —
// the one test that exercises the production timer path.
func TestRealHeartbeatsEndToEnd(t *testing.T) {
	cfg := Config{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  200 * time.Millisecond,
	}
	coord, ts := startWorld(t, 3, cfg)
	start := time.Now()
	ts[2].conn.Close()
	err := runRanks(ts[:2], func(c *mpi.Comm) error {
		err := c.Barrier()
		var rf *apierr.RankFailedError
		if !errors.As(err, &rf) || rf.Rank != 2 {
			return fmt.Errorf("barrier after kill: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("detection took %v", waited)
	}
	if got := coord.Alive(); len(got) != 2 {
		t.Fatalf("alive = %v", got)
	}
}
