// Package repro is a pure-Go reproduction of "Adaptive Configuration of In
// Situ Lossy Compression for Cosmology Simulations via Fine-Grained
// Rate-Quality Modeling" (Jin et al., HPDC '21).
//
// The public API lives in the adaptive package (and adaptive/codecs for
// backend registration) — see its documentation for the quickstart.
// Everything under internal/ is implementation detail with no
// compatibility promise; README.md documents the internal layout.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation:
//
//	go test -bench=. -benchtime=1x -benchmem .
package repro
