package codec

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Fuzz harness for the frame envelope decoder: whatever the bytes,
// DecodeFrame must return an error or a usable frame — never panic. The
// seed corpus (valid sz and zfp frames plus targeted corruptions) is
// checked in under testdata/fuzz/FuzzDecodeFrame; regenerate it with
//
//	go test ./internal/codec -run TestWriteFuzzCorpus -update-fuzz-corpus
//
// and extend coverage any time with
//
//	go test ./internal/codec -fuzz=FuzzDecodeFrame -fuzztime=30s

var updateFuzzCorpus = flag.Bool("update-fuzz-corpus", false, "rewrite the checked-in fuzz seed corpus")

// fuzzSeedFrames builds one valid frame per registered codec from a small
// deterministic brick.
func fuzzSeedFrames(tb testing.TB) [][]byte {
	tb.Helper()
	data := make([]float32, 4*4*4)
	for i := range data {
		data[i] = float32(i%7) * 0.5
	}
	var out [][]byte
	for _, id := range IDs() {
		c, err := Lookup(id)
		if err != nil {
			tb.Fatal(err)
		}
		fr, err := c.Compress(data, 4, 4, 4, Options{ErrorBound: 0.1}, nil)
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, EncodeFrame(fr))
	}
	return out
}

// fuzzSeedMutations derives targeted corruptions from the valid frames.
func fuzzSeedMutations(valid [][]byte) [][]byte {
	out := [][]byte{
		nil,
		[]byte("CFRM"),
		[]byte("XXXXxxxxxxxx"),
		{0x43, 0x46, 0x52, 0x4D, 0xFF, 0x20}, // bad version
		{0x43, 0x46, 0x52, 0x4D, 0x01, 0x00}, // zero ID length
		{0x43, 0x46, 0x52, 0x4D, 0x01, 0xFF}, // oversized ID length
	}
	for _, v := range valid {
		if len(v) == 0 {
			continue
		}
		trunc := v[:len(v)/2]
		out = append(out, trunc)
		flip := append([]byte(nil), v...)
		flip[len(flip)-1] ^= 0xFF
		out = append(out, flip)
		unknown := append([]byte(nil), v...)
		unknown[6] = 'q' // codec ID now names no backend
		out = append(out, unknown)
	}
	return out
}

func FuzzDecodeFrame(f *testing.F) {
	seeds := fuzzSeedFrames(f)
	for _, s := range seeds {
		f.Add(s)
	}
	for _, s := range fuzzSeedMutations(seeds) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return // malformed input must error, which it did
		}
		// A frame that decoded must round-trip through the envelope
		// (accepted inputs may normalize reserved bits, so identity — not
		// byte-equality — is the invariant here; golden tests pin bytes).
		blob := EncodeFrame(fr)
		fr2, err := DecodeFrame(blob)
		if err != nil {
			t.Fatalf("re-encoded frame no longer decodes: %v", err)
		}
		if fr2.CodecID() != fr.CodecID() || fr2.N() != fr.N() {
			t.Fatalf("round trip changed identity: %s/%d -> %s/%d",
				fr.CodecID(), fr.N(), fr2.CodecID(), fr2.N())
		}
		// Decompression of small frames must not panic (errors are fine:
		// the payload may still be garbage past the header checks).
		if n := fr.N(); n > 0 && n <= 1<<18 {
			_, _ = fr.Decompress()
		}
	})
}

// TestWriteFuzzCorpus materializes the seed corpus as files in Go's corpus
// format so the seeds survive in git, not only in f.Add calls.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*updateFuzzCorpus {
		t.Skip("run with -update-fuzz-corpus to rewrite the corpus")
	}
	seeds := fuzzSeedFrames(t)
	writeFuzzCorpus(t, "FuzzDecodeFrame", append(seeds, fuzzSeedMutations(seeds)...))
}

// writeFuzzCorpus writes byte seeds in the `go test fuzz v1` corpus file
// format (shared helper; also used by internal/core's harness via copy).
func writeFuzzCorpus(t *testing.T, fuzzName string, seeds [][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		path := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
