package pipeline

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/apierr"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/nyx"
	"repro/internal/parallel"
)

// chaosTrigger is a cell value no synthetic field produces; the chaos
// codec detonates on any partition containing it, modeling a codec bug
// that only specific data tickles.
const chaosTrigger = float32(-1.2345678e18)

var errChaos = &chaosPanic{}

type chaosPanic struct{}

func (*chaosPanic) Error() string { return "chaos: injected codec panic" }

// chaosCodec wraps the real sz backend and panics — inside whatever pool
// goroutine the partition fan-out put it on — when the input contains the
// trigger value.
type chaosCodec struct {
	id    codec.ID
	inner codec.Codec
}

func (c chaosCodec) ID() codec.ID { return c.id }

func (c chaosCodec) Compress(data []float32, nx, ny, nz int, opt codec.Options, s *codec.Scratch) (codec.Frame, error) {
	for _, v := range data {
		if v == chaosTrigger {
			panic(errChaos)
		}
	}
	return c.inner.Compress(data, nx, ny, nz, opt, s)
}

func (c chaosCodec) Parse(body []byte) (codec.Frame, error) { return c.inner.Parse(body) }

var chaosOnce sync.Once

func registerChaos(t *testing.T) codec.ID {
	t.Helper()
	chaosOnce.Do(func() {
		inner, err := codec.Lookup(codec.SZ)
		if err != nil {
			t.Fatal(err)
		}
		if err := codec.Register(chaosCodec{id: "chaos-pipe", inner: inner}); err != nil {
			t.Fatal(err)
		}
	})
	return "chaos-pipe"
}

func faultField(t *testing.T, n int) *grid.Field3D {
	t.Helper()
	snap, err := nyx.Generate(nyx.Params{N: n, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	f, err := snap.Field(nyx.FieldBaryonDensity)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func stepOnce(t *testing.T, cfg core.Config, snap map[string]*grid.Field3D, opt StepOptions) *StepResult {
	t.Helper()
	drv, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := drv.StepCompressed(context.Background(), snap, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStepBudgetScalesRoutePerField(t *testing.T) {
	f := faultField(t, 16)
	cfg := core.Config{PartitionDim: 8}
	snap := map[string]*grid.Field3D{"rho": f}

	unscaled := stepOnce(t, cfg, snap, StepOptions{BudgetScale: 1}).Fields["rho"].Bytes()
	stepped := stepOnce(t, cfg, snap, StepOptions{BudgetScale: 4}).Fields["rho"].Bytes()
	if string(unscaled) == string(stepped) {
		t.Fatal("scale 4 produced the same archive as scale 1; the scales test cannot discriminate")
	}

	// A per-field override must win over the step-wide scale, byte for
	// byte: this is the contract floor holding one tenant at cap while
	// the batch runs stepped up.
	floored := stepOnce(t, cfg, snap, StepOptions{
		BudgetScale:  4,
		BudgetScales: map[string]float64{"rho": 1},
	}).Fields["rho"].Bytes()
	if string(floored) != string(unscaled) {
		t.Error("BudgetScales override did not reproduce the unscaled archive")
	}

	drv, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drv.StepCompressed(context.Background(), snap, StepOptions{
		BudgetScales: map[string]float64{"rho": 0},
	}); !errors.Is(err, apierr.ErrBadConfig) {
		t.Errorf("non-positive per-field scale: err = %v, want ErrBadConfig", err)
	}
}

func TestStepIsolatesCodecPanicPerField(t *testing.T) {
	id := registerChaos(t)
	good := faultField(t, 16)
	bad := faultField(t, 16)
	bad.Data[0] = chaosTrigger

	drv, err := New(core.Config{PartitionDim: 8, Codec: id}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := drv.StepCompressed(context.Background(), map[string]*grid.Field3D{
		"good": good,
		"bad":  bad,
	}, StepOptions{})
	if err != nil {
		t.Fatalf("step error = %v; a per-field panic must not fail the step", err)
	}
	if res.Fields["good"] == nil {
		t.Error("batch-mate of the panicking field lost its result")
	}
	ferr := res.Errs["bad"]
	if ferr == nil {
		t.Fatal("panicking field reported no error")
	}
	if !strings.Contains(ferr.Error(), "panic during compression") {
		t.Errorf("field error %v does not identify the panic", ferr)
	}
	// The panic detonated inside a partition-fan-out worker; the funnel
	// must keep the original value in the unwrap chain so chaos tests can
	// classify what blew up.
	if !errors.Is(ferr, errChaos) {
		t.Errorf("errors.Is through the panic funnel failed: %v", ferr)
	}
	var pe *parallel.PanicError
	if !errors.As(ferr, &pe) {
		t.Logf("panic surfaced on the fan-out caller directly (no pool helper): %v", ferr)
	}

	// The driver keeps working for the field that panicked once its data
	// is clean again — no poisoned per-field state.
	bad.Data[0] = 1
	res, err = drv.StepCompressed(context.Background(), map[string]*grid.Field3D{"bad": bad}, StepOptions{})
	if err != nil || res.Errs["bad"] != nil || res.Fields["bad"] == nil {
		t.Errorf("field did not recover after the panicking step: err=%v fieldErr=%v", err, res.Errs["bad"])
	}
}
