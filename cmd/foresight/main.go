// Command foresight runs the broad-spectrum evaluation the paper performs
// with VizAly-Foresight: it sweeps static error bounds over a snapshot
// field, computes general and analysis-aware quality metrics for each, and
// optionally runs the trial-and-error baseline search.
//
// Usage:
//
//	foresight -snapshot data/snapshot_z42.nyx -field temperature \
//	          -lo 1 -hi 1e5 -steps 11 [-halo] [-csv out.csv] [-baseline]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/adaptive"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("foresight: ")
	var (
		snapPath  = flag.String("snapshot", "", "snapshot file from nyxgen (required)")
		fieldName = flag.String("field", adaptive.FieldBaryonDensity, "field to evaluate")
		partition = flag.Int("partition", 16, "partition brick dimension")
		lo        = flag.Float64("lo", 0, "smallest error bound (0 = mean|value|/1000)")
		hi        = flag.Float64("hi", 0, "largest error bound (0 = mean|value|*10)")
		steps     = flag.Int("steps", 9, "sweep points (geometric)")
		useHalo   = flag.Bool("halo", false, "evaluate halo-finder quality as well")
		baseline  = flag.Bool("baseline", false, "run the trial-and-error baseline search")
		csvPath   = flag.String("csv", "", "write results as CSV")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = all cores)")
	)
	flag.Parse()
	if *snapPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx := context.Background()
	snap, err := adaptive.ReadSnapshotFile(*snapPath)
	if err != nil {
		log.Fatal(err)
	}
	f, ok := snap.Fields[*fieldName]
	if !ok {
		log.Fatalf("field %q not in snapshot", *fieldName)
	}
	sys, err := adaptive.New(
		adaptive.WithPartitionDim(*partition),
		adaptive.WithWorkers(*workers),
	)
	if err != nil {
		log.Fatal(err)
	}
	ev := sys.Foresight()
	ev.Workers = *workers
	if *useHalo {
		hcfg := adaptive.DefaultHaloConfig()
		ev.Halo = &hcfg
	}

	// Default sweep range anchored on the field's mean magnitude.
	var meanAbs float64
	for _, v := range f.Data {
		if v < 0 {
			meanAbs -= float64(v)
		} else {
			meanAbs += float64(v)
		}
	}
	meanAbs /= float64(len(f.Data))
	if *lo <= 0 {
		*lo = meanAbs / 1000
	}
	if *hi <= 0 {
		*hi = meanAbs * 10
	}
	ebs, err := adaptive.GeometricGrid(*lo, *hi, *steps)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sweeping %s over %d bounds in [%.4g, %.4g]\n", *fieldName, len(ebs), *lo, *hi)
	rows, err := ev.Sweep(ctx, *fieldName, f, ebs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %-8s %-9s %-8s %-14s %-10s\n",
		"eb", "ratio", "bits/val", "psnr", "spectrum_dev", "quality")
	for _, m := range rows {
		fmt.Printf("%-12.4g %-8.2f %-9.3f %-8.2f %-14.5f %-10v\n",
			m.EB, m.Ratio, m.BitRate, m.PSNR, m.SpectrumMaxDev, m.QualityOK())
	}

	if *baseline {
		res, err := ev.TrialAndError(ctx, *fieldName, f, ebs, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trial-and-error baseline: knee eb %.4g, deployed eb %.4g (%d trials)\n",
			res.BestPassingEB, res.ChosenEB, res.Trials)
	}

	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		if err := adaptive.WriteMetricsCSV(out, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("CSV written to %s\n", *csvPath)
	}
}
