package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/codec"
	"repro/internal/grid"
)

// Golden-file tests: committed archive fixtures that today's readers must
// keep decoding bit-exactly. They are the format-stability contract for
// archive v2 (single field) and v3 (multi-snapshot stream) across future
// PRs — a change that re-encodes differently is visible (the writer check),
// and a change that decodes differently is a regression (the reader check).
//
// Regenerate with:
//
//	go test ./internal/core -run TestGolden -update-golden
//
// and commit the new fixtures together with the format change that
// motivated them.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden archive fixtures")

// goldenField is a small fully deterministic field (no RNG, no FFT): a
// smooth ramp with one sharp blob, so partitions differ in compressibility.
func goldenField() *grid.Field3D {
	f := grid.NewCube(16)
	for i := range f.Data {
		x, y, z := f.Coords(i)
		v := math.Sin(0.4*float64(x)) + 0.25*float64(y) + 0.1*float64(z)
		dx, dy, dz := float64(x-4), float64(y-11), float64(z-6)
		v += 8 * math.Exp(-(dx*dx+dy*dy+dz*dz)/9)
		f.Data[i] = float32(v)
	}
	return f
}

// goldenStep builds step t of the golden stream: the base field scaled and
// shifted deterministically.
func goldenStep(t int) *grid.Field3D {
	f := goldenField()
	for i := range f.Data {
		f.Data[i] = f.Data[i]*float32(1+0.1*float64(t)) + float32(t)
	}
	return f
}

func goldenPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("testdata", name)
}

func writeOrReadGolden(t *testing.T, name string, gen func() []byte) []byte {
	t.Helper()
	path := goldenPath(t, name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, gen(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create fixtures)", err)
	}
	return data
}

func float32le(xs []float32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

// TestGoldenArchiveV2 pins the single-field archive format for both
// backends: the committed fixture must decode bit-exactly to the committed
// reconstruction, and re-encoding the parsed archive must reproduce the
// fixture byte for byte.
func TestGoldenArchiveV2(t *testing.T) {
	for _, id := range []codec.ID{codec.SZ, codec.ZFP} {
		t.Run(string(id), func(t *testing.T) {
			e := engine(t, Config{PartitionDim: 8, Codec: id})
			compress := func() *CompressedField {
				cf, err := e.CompressStatic(context.Background(), goldenField(), 0.05)
				if err != nil {
					t.Fatal(err)
				}
				return cf
			}
			archive := writeOrReadGolden(t, fmt.Sprintf("golden_%s.acfd", id),
				func() []byte { return compress().Bytes() })
			expect := writeOrReadGolden(t, fmt.Sprintf("golden_%s.f32", id), func() []byte {
				recon, err := compress().Decompress(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				return float32le(recon.Data)
			})

			cf, err := ParseCompressedField(archive)
			if err != nil {
				t.Fatalf("fixture no longer parses: %v", err)
			}
			if cf.Codec != id {
				t.Errorf("fixture codec %q, want %q", cf.Codec, id)
			}
			if got := cf.Bytes(); !bytes.Equal(got, archive) {
				t.Errorf("re-encoding the fixture changed %d of %d bytes",
					diffCount(got, archive), len(archive))
			}
			recon, err := cf.Decompress(context.Background())
			if err != nil {
				t.Fatalf("fixture no longer decompresses: %v", err)
			}
			if got := float32le(recon.Data); !bytes.Equal(got, expect) {
				t.Errorf("fixture decodes to different values (%d of %d bytes differ)",
					diffCount(got, expect), len(expect))
			}
			// The fixture's reconstruction must also still honor the bound
			// it was written at (sz guarantees it; zfp's search is best
			// effort but pinned by the golden bytes above).
			if id == codec.SZ {
				orig := goldenField()
				for i := range orig.Data {
					if d := math.Abs(float64(orig.Data[i]) - float64(recon.Data[i])); d > 0.05*(1+1e-6) {
						t.Fatalf("cell %d error %g exceeds the 0.05 bound", i, d)
					}
				}
			}
		})
	}
}

// TestGoldenStreamV3 pins the multi-snapshot stream container: a 3-step,
// two-field (mixed-codec!) fixture must keep its index and keep decoding
// bit-exactly.
func TestGoldenStreamV3(t *testing.T) {
	szEng := engine(t, Config{PartitionDim: 8, Codec: codec.SZ})
	zfpEng := engine(t, Config{PartitionDim: 8, Codec: codec.ZFP})
	const steps = 3

	buildStep := func(step int) map[string]*CompressedField {
		f := goldenStep(step)
		a, err := szEng.CompressStatic(context.Background(), f, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		b, err := zfpEng.CompressStatic(context.Background(), f, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		return map[string]*CompressedField{"density_sz": a, "density_zfp": b}
	}
	stream := writeOrReadGolden(t, "golden_stream.acs", func() []byte {
		var buf bytes.Buffer
		sw, err := NewStreamWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			if err := sw.WriteStep(buildStep(s)); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	})
	expect := writeOrReadGolden(t, "golden_stream.f32", func() []byte {
		var out []byte
		for s := 0; s < steps; s++ {
			for _, name := range []string{"density_sz", "density_zfp"} {
				recon, err := buildStep(s)[name].Decompress(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, float32le(recon.Data)...)
			}
		}
		return out
	})

	sr, err := OpenStream(bytes.NewReader(stream), int64(len(stream)))
	if err != nil {
		t.Fatalf("fixture stream no longer opens: %v", err)
	}
	if sr.Steps() != steps {
		t.Fatalf("fixture has %d steps, want %d", sr.Steps(), steps)
	}
	cells := 16 * 16 * 16
	for s := 0; s < steps; s++ {
		fields, err := sr.ReadStep(s)
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		for fi, name := range []string{"density_sz", "density_zfp"} {
			cf := fields[name]
			if cf == nil {
				t.Fatalf("step %d missing %q", s, name)
			}
			recon, err := cf.Decompress(context.Background())
			if err != nil {
				t.Fatalf("step %d %s: %v", s, name, err)
			}
			off := (s*2 + fi) * cells * 4
			if got := float32le(recon.Data); !bytes.Equal(got, expect[off:off+cells*4]) {
				t.Errorf("step %d %s decodes to different values", s, name)
			}
		}
	}
}

func diffCount(a, b []byte) int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	diff := n - min(len(a), len(b))
	for i := 0; i < min(len(a), len(b)); i++ {
		if a[i] != b[i] {
			diff++
		}
	}
	return diff
}
