package experiments

import "testing"

func TestAblationCompressor(t *testing.T) {
	res := runExperiment(t, "ablation-compressor")
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 matched rates, got %d", len(res.Rows))
	}
	// SZ's error bound is honored at every matched rate: max err ≤ eb.
	for _, row := range res.Rows {
		eb := parse(t, row[3])
		szMax := parse(t, row[4])
		if szMax > eb*(1+1e-5) {
			t.Errorf("SZ bound violated at rate %s: %v > %v", row[0], szMax, eb)
		}
	}
}
