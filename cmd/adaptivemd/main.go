// Command adaptivemd is one rank of a failure-tolerant distributed
// compression run. N processes join a coordinator (hosted by rank 0) over
// TCP, stream the same deterministic synthetic simulation, and each
// compresses the partitions it owns into its own shard file. A step commits
// only when every alive rank has written it; when a rank dies mid-run
// (crash, kill -9, network cut), the survivors detect it within the
// heartbeat timeout, roll back the uncommitted step, rebalance the dead
// rank's partitions deterministically, and finish without it. Rank 0 then
// merges every shard — the dead rank's torn one included — into a single
// archive that is byte-identical to what a single-process run would have
// written.
//
// Usage (three local ranks, shards and the merged archive under -dir):
//
//	adaptivemd -rank 0 -size 3 -dir /tmp/run &
//	adaptivemd -rank 1 -size 3 -dir /tmp/run &
//	adaptivemd -rank 2 -size 3 -dir /tmp/run &
//	wait
//
// -die-after-step N makes the rank SIGKILL itself right after committing
// step N — the deterministic stand-in for an external kill -9, used by the
// CI chaos job.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"repro/adaptive"
)

func main() {
	log.SetFlags(0)
	var (
		addr     = flag.String("addr", "127.0.0.1:29400", "coordinator address (rank 0 listens on it, everyone joins it)")
		rank     = flag.Int("rank", -1, "this process's rank in [0, size)")
		size     = flag.Int("size", 3, "world size")
		dir      = flag.String("dir", ".", "directory for shard files and the merged archive")
		out      = flag.String("o", "merged.acs", "merged archive filename under -dir (rank 0 writes it)")
		steps    = flag.Int("steps", 4, "number of timesteps to stream")
		n        = flag.Int("n", 16, "cubic grid dimension")
		dim      = flag.Int("dim", 8, "partition (brick) dimension")
		seed     = flag.Uint64("seed", 7, "synthetic simulation seed (identical on every rank)")
		eb       = flag.Float64("eb", 0.5, "absolute average error-bound budget per field")
		hbEvery  = flag.Duration("hb-interval", 250*time.Millisecond, "heartbeat interval")
		hbAfter  = flag.Duration("hb-timeout", time.Second, "declare a silent rank dead after this long")
		dieAfter = flag.Int("die-after-step", -1, "SIGKILL this process after committing this step (chaos testing)")
	)
	flag.Parse()
	log.SetPrefix(fmt.Sprintf("adaptivemd[%d]: ", *rank))
	if *rank < 0 || *rank >= *size {
		log.Fatalf("-rank %d outside [0, %d)", *rank, *size)
	}

	netCfg := adaptive.NetConfig{HeartbeatInterval: *hbEvery, HeartbeatTimeout: *hbAfter}
	if *rank == 0 {
		coord, err := adaptive.ListenCoordinator(*addr, *size, netCfg)
		if err != nil {
			log.Fatalf("coordinator: %v", err)
		}
		defer coord.Close()
		log.Printf("coordinating world of %d on %s", *size, coord.Addr())
	}
	transport := join(*addr, *rank, *size, netCfg)
	defer transport.Close()

	src, err := adaptive.NewSynthStream(adaptive.SynthStreamParams{
		Base:   adaptive.SynthParams{N: *n, Seed: *seed},
		Steps:  *steps,
		Fields: []string{"baryon_density", "temperature"},
	})
	if err != nil {
		log.Fatalf("synthetic stream: %v", err)
	}

	shardPath := filepath.Join(*dir, fmt.Sprintf("shard-%d.acs", *rank))
	shard, err := os.Create(shardPath)
	if err != nil {
		log.Fatal(err)
	}
	defer shard.Close()

	stats, err := adaptive.RunRank(context.Background(), transport, src, shard, adaptive.RankConfig{
		Engine: adaptive.EngineConfig{PartitionDim: *dim},
		AvgEB:  *eb,
		OnCommit: func(step, epoch int) {
			log.Printf("committed step %d (epoch %d)", step, epoch)
			if step == *dieAfter {
				log.Printf("chaos: SIGKILL after step %d", step)
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		},
		OnFailure: func(failedRank, epoch int) {
			log.Printf("rank %d failed, rebalancing under epoch %d", failedRank, epoch)
		},
	})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	log.Printf("done: %d steps, %d retries, final epoch %d, alive %v, %d collectives",
		stats.Steps, stats.Retries, stats.FinalEpoch, stats.Alive, stats.Collectives)

	if *rank == 0 {
		merge(*dir, *out, *size, *n, *dim, stats.Steps)
	}
}

// join connects to the coordinator, retrying briefly so non-zero ranks
// tolerate starting before rank 0 has bound the listen socket.
func join(addr string, rank, size int, cfg adaptive.NetConfig) *adaptive.NetTransport {
	deadline := time.Now().Add(10 * time.Second)
	for {
		t, err := adaptive.JoinWorld(addr, rank, size, cfg)
		if err == nil {
			return t
		}
		if time.Now().After(deadline) {
			log.Fatalf("join %s: %v", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// merge reassembles every rank's shard — including a dead rank's torn one —
// into the single-process-identical archive and proves it reopens cleanly.
func merge(dir, out string, size, n, dim, wantSteps int) {
	var shards []adaptive.ShardInput
	var files []*os.File
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for r := 0; r < size; r++ {
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.acs", r))
		f, err := os.Open(path)
		if err != nil {
			// A rank killed before it created its shard contributed no
			// committed steps, so there is nothing of it to merge.
			log.Printf("merge: skipping %s: %v", path, err)
			continue
		}
		files = append(files, f)
		st, err := f.Stat()
		if err != nil {
			log.Fatal(err)
		}
		shards = append(shards, adaptive.ShardInput{R: f, Size: st.Size()})
	}
	nParts := (n / dim) * (n / dim) * (n / dim)
	outPath := filepath.Join(dir, out)
	dst, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := adaptive.MergeShards(dst, shards, nParts)
	if err != nil {
		log.Fatalf("merge: %v", err)
	}
	if err := dst.Close(); err != nil {
		log.Fatal(err)
	}
	if rep.Steps != wantSteps {
		log.Fatalf("merge: assembled %d steps, committed %d", rep.Steps, wantSteps)
	}

	// Prove the merged archive opens on the fast (footer) path.
	mf, err := os.Open(outPath)
	if err != nil {
		log.Fatal(err)
	}
	defer mf.Close()
	st, err := mf.Stat()
	if err != nil {
		log.Fatal(err)
	}
	sr, err := adaptive.OpenStream(mf, st.Size())
	if err != nil {
		log.Fatalf("merged archive does not reopen: %v", err)
	}
	log.Printf("merged %s: %d steps from %d shards (%d salvaged, %d duplicate parts deduplicated)",
		outPath, sr.Steps(), len(shards), rep.SalvagedShards, rep.DuplicateParts)
}
