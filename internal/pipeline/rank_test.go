package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/apierr"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/mpinet"
)

// rankSteps builds the deterministic 3-step, 2-field source every rank (and
// the golden single-process run) consumes.
func rankSteps() []map[string]*grid.Field3D {
	mk := func(seed int) *grid.Field3D {
		f := grid.NewCube(16)
		for i := range f.Data {
			x, y, z := f.Coords(i)
			f.Data[i] = float32(seed) * float32(x+2*y+3*z+1)
		}
		return f
	}
	var steps []map[string]*grid.Field3D
	for s := 0; s < 3; s++ {
		steps = append(steps, map[string]*grid.Field3D{
			"rho":  mk(s + 1),
			"temp": mk(s + 7),
		})
	}
	return steps
}

var rankCfg = RankConfig{
	Engine: core.Config{PartitionDim: 8},
	AvgEB:  2.0,
	AvgEBs: map[string]float64{"temp": 4.0},
}

// goldenStream writes the single-process reference archive: the same
// calibration, budgets, and in situ protocol RunRank uses, straight through
// CompressInSitu into one plain stream.
func goldenStream(t *testing.T) []byte {
	t.Helper()
	eng, err := core.NewEngine(rankCfg.Engine)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw, err := core.NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cals := map[string]*core.Calibration{}
	for _, snap := range rankSteps() {
		block := map[string]*core.CompressedField{}
		for name, f := range snap {
			if cals[name] == nil {
				cal, err := eng.Calibrate(context.Background(), f, core.CalibrationOptions{})
				if err != nil {
					t.Fatal(err)
				}
				cals[name] = cal
			}
			eb := rankCfg.AvgEB
			if v, ok := rankCfg.AvgEBs[name]; ok {
				eb = v
			}
			cf, _, err := eng.CompressInSitu(context.Background(), f, cals[name], core.InSituOptions{Ranks: 1, AvgEB: eb})
			if err != nil {
				t.Fatal(err)
			}
			block[name] = cf
		}
		if err := sw.WriteStep(block); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mergeRankShards(t *testing.T, nParts int, shards ...[]byte) ([]byte, *core.MergeReport) {
	t.Helper()
	var in []core.ShardInput
	for _, b := range shards {
		in = append(in, core.ShardInput{R: bytes.NewReader(b), Size: int64(len(b))})
	}
	var out bytes.Buffer
	rep, err := core.MergeShards(&out, in, nParts)
	if err != nil {
		t.Fatal(err)
	}
	return out.Bytes(), rep
}

func TestRunRankInProcessMatchesGolden(t *testing.T) {
	golden := goldenStream(t)
	const ranks = 3
	shards := make([]bytes.Buffer, ranks)
	stats := make([]*RankRunStats, ranks)
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		st, err := RunRank(context.Background(), c.Transport(), FromSnapshots(rankSteps()), &shards[c.Rank()], rankCfg)
		if err != nil {
			return err
		}
		stats[c.Rank()] = st
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, st := range stats {
		if st.Steps != 3 || st.Retries != 0 || st.FinalEpoch != 0 {
			t.Fatalf("rank %d stats %+v, want 3 clean steps", r, *st)
		}
	}
	merged, rep := mergeRankShards(t, 8, shards[0].Bytes(), shards[1].Bytes(), shards[2].Bytes())
	if rep.SalvagedShards != 0 || rep.DuplicateParts != 0 {
		t.Fatalf("healthy merge report %+v", *rep)
	}
	if !bytes.Equal(merged, golden) {
		t.Fatalf("3-rank merged archive differs from single-process golden (%d vs %d bytes)", len(merged), len(golden))
	}
}

// tcpWorld starts a coordinator plus per-rank transports with automatic
// tickers off (liveness is test-driven) and generous message timeouts.
func tcpWorld(t *testing.T, size int, dial map[int]func(network, addr string) (net.Conn, error)) (*mpinet.Coordinator, []*mpinet.Transport) {
	t.Helper()
	cfg := mpinet.Config{HeartbeatInterval: -1, HeartbeatTimeout: -1, MessageTimeout: 30 * time.Second}
	coord, err := mpinet.Listen("127.0.0.1:0", size, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	ts := make([]*mpinet.Transport, size)
	for r := 0; r < size; r++ {
		rcfg := cfg
		if d, ok := dial[r]; ok {
			rcfg.Dial = d
		}
		tr, err := mpinet.Join(coord.Addr(), r, size, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		ts[r] = tr
	}
	return coord, ts
}

func TestRunRankOverTCPMatchesGolden(t *testing.T) {
	golden := goldenStream(t)
	const ranks = 3
	_, ts := tcpWorld(t, ranks, nil)
	shards := make([]bytes.Buffer, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, errs[r] = RunRank(context.Background(), ts[r], FromSnapshots(rankSteps()), &shards[r], rankCfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	merged, _ := mergeRankShards(t, 8, shards[0].Bytes(), shards[1].Bytes(), shards[2].Bytes())
	if !bytes.Equal(merged, golden) {
		t.Fatal("TCP merged archive differs from single-process golden")
	}
}

// TestRunRankSurvivesRankDeath is the tentpole end-to-end: rank 2's
// connection is cut mid-run (its Nth frame write is dropped on the floor and
// the conn closed, like a kill -9). The survivors must detect the failure as
// a typed error, roll back the uncommitted step, rebalance onto the
// remaining ranks, and finish — and the merged archive (including the dead
// rank's salvaged shard) must still be byte-identical to the golden.
func TestRunRankSurvivesRankDeath(t *testing.T) {
	golden := goldenStream(t)
	const ranks = 3
	dir := t.TempDir()

	// Per step: 2 fields × (3 barriers + 1 allgather) + 1 commit barrier =
	// 9 contribute frames; +1 for the hello. Dropping after 1+9+9+3 writes
	// kills rank 2 three collectives into step 2, after two committed steps.
	dial := map[int]func(network, addr string) (net.Conn, error){
		2: func(network, addr string) (net.Conn, error) {
			c, err := net.DialTimeout(network, addr, 5*time.Second)
			if err != nil {
				return nil, err
			}
			return faultinject.WrapConn(c, faultinject.ConnFaults{DropAfterWrites: 22}), nil
		},
	}
	_, ts := tcpWorld(t, ranks, dial)

	shardPath := func(r int) string { return filepath.Join(dir, fmt.Sprintf("shard-%d.acs", r)) }
	errs := make([]error, ranks)
	stats := make([]*RankRunStats, ranks)
	failures := make([]int, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fh, err := os.Create(shardPath(r))
			if err != nil {
				errs[r] = err
				return
			}
			defer fh.Close()
			cfg := rankCfg
			cfg.OnFailure = func(rank, epoch int) { failures[r]++ }
			stats[r], errs[r] = RunRank(context.Background(), ts[r], FromSnapshots(rankSteps()), fh, cfg)
		}(r)
	}
	wg.Wait()

	if errs[2] == nil {
		t.Fatal("dead rank finished cleanly")
	}
	for _, r := range []int{0, 1} {
		if errs[r] != nil {
			t.Fatalf("survivor rank %d: %v", r, errs[r])
		}
		st := stats[r]
		if st.Steps != 3 || st.Retries == 0 || st.FinalEpoch == 0 {
			t.Fatalf("survivor rank %d stats %+v, want 3 steps with a retry under a new epoch", r, *st)
		}
		if failures[r] == 0 {
			t.Fatalf("survivor rank %d observed no failure event", r)
		}
		if got := st.Alive; len(got) != 2 || got[0] != 0 || got[1] != 1 {
			t.Fatalf("survivor rank %d alive set %v, want [0 1]", r, got)
		}
	}

	var shards [][]byte
	for r := 0; r < ranks; r++ {
		b, err := os.ReadFile(shardPath(r))
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, b)
	}
	merged, rep := mergeRankShards(t, 8, shards...)
	if rep.Steps != 3 {
		t.Fatalf("merged %d steps, want 3", rep.Steps)
	}
	if rep.SalvagedShards == 0 {
		t.Fatal("dead rank's shard was not salvaged")
	}
	if !bytes.Equal(merged, golden) {
		t.Fatal("post-failure merged archive differs from single-process golden")
	}
}

func TestRunRankRejectsMissingBudget(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		_, err := RunRank(context.Background(), c.Transport(), FromSnapshots(rankSteps()), &bytes.Buffer{}, RankConfig{
			Engine: core.Config{PartitionDim: 8},
		})
		return err
	})
	if !errors.Is(err, apierr.ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
}

func TestRunRankRejectsMoreRanksThanPartitions(t *testing.T) {
	// 16^3 at partition dim 16 → 1 partition for 2 ranks.
	err := mpi.Run(2, func(c *mpi.Comm) error {
		cfg := RankConfig{Engine: core.Config{PartitionDim: 16}, AvgEB: 1}
		_, err := RunRank(context.Background(), c.Transport(), FromSnapshots(rankSteps()), &bytes.Buffer{}, cfg)
		return err
	})
	if !errors.Is(err, apierr.ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
}
