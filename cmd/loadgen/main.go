// Command loadgen drives a running adaptived with synthetic load: many
// concurrent clients posting Nyx-like fields for compression over h2c,
// measuring throughput (field-steps/sec), latency percentiles, and the
// backpressure/adaptation behavior (429 counts, final rate level). It is
// both the benchmark harness behind BENCH_PR7.json and the CI smoke test
// for the service.
//
// Each worker drives an adaptive.Client, so refused requests back off the
// way a real client would — capped exponential backoff with full jitter,
// honoring the server's Retry-After — instead of hammering a full queue.
// Success latencies therefore include any backoff spent getting the
// request accepted: they measure what a caller experiences, not one wire
// round-trip.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8323 -clients 1000 -duration 10s \
//	        [-dim 32] [-fields 4] [-tenants 8] [-retries 4] [-label adapt-on] \
//	        [-json BENCH_PR7.json] [-max-p99 2s]
//
// With -mode read it instead drives an archived server with an archive
// browse workload: steps are drawn from a Zipf distribution (hot recent
// snapshots dominate, like a real analysis portal), a browse fraction of
// requests fetches a low spliced rate while the rest pulls
// analysis-grade bytes, and revisits revalidate with If-None-Match. It
// reports read steps/sec, the server's cache hit ratio, and the 304
// share:
//
//	loadgen -mode read -url http://127.0.0.1:8324 -stream demo \
//	        -clients 64 -duration 10s [-browse-rate 4] [-analysis-rate 0] \
//	        [-browse-frac 0.8] [-zipf-s 1.3] [-json BENCH_PR10.json]
//
// With -json the results merge into the named file under -label (same
// shape as the BENCH_PR*.json trajectory files: a "runs" map keyed by
// label). With -max-p99 the command exits non-zero when the successful
// requests' p99 exceeds the bound — the CI gate.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/adaptive"
)

type result struct {
	ok, rejected, circuit, failed uint64
	bytesOut, bytesIn             uint64
	lats                          []time.Duration
	maxLevel                      int
	counters                      adaptive.ClientCounters
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		url      = flag.String("url", "http://127.0.0.1:8323", "adaptived base URL")
		clients  = flag.Int("clients", 256, "concurrent clients")
		duration = flag.Duration("duration", 10*time.Second, "how long to drive load")
		dim      = flag.Int("dim", 32, "field edge length (must divide the server's partition dim)")
		nFields  = flag.Int("fields", 4, "distinct fields per tenant (max 6)")
		tenants  = flag.Int("tenants", 8, "distinct tenants")
		seed     = flag.Uint64("seed", 7, "synthetic universe seed")
		conns    = flag.Int("conns", 16, "h2c connections to spread clients over (each multiplexes ~250 streams)")
		retries  = flag.Int("retries", 4, "max attempts per request (1 = no retries)")
		label    = flag.String("label", "", "label for the JSON report entry")
		jsonPath = flag.String("json", "", "merge results into this BENCH-style JSON file")
		maxP99   = flag.Duration("max-p99", 0, "exit non-zero when the success p99 exceeds this (0 = no gate)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-attempt timeout")

		mode       = flag.String("mode", "compress", "workload: compress (adaptived) or read (archived)")
		stream     = flag.String("stream", "demo", "archive stream to browse (read mode)")
		browseRate = flag.Float64("browse-rate", 4, "spliced rate for browse fetches (read mode)")
		analyRate  = flag.Float64("analysis-rate", 0, "rate for analysis fetches, 0 = stored bytes (read mode)")
		browseFrac = flag.Float64("browse-frac", 0.8, "fraction of fetches that browse vs analyze (read mode)")
		zipfS      = flag.Float64("zipf-s", 1.3, "Zipf exponent for step popularity (read mode)")
	)
	flag.Parse()

	if *mode == "read" {
		runRead(readConfig{
			url: *url, clients: *clients, duration: *duration, conns: *conns,
			retries: *retries, timeout: *timeout, label: *label, jsonPath: *jsonPath,
			maxP99: *maxP99, stream: *stream, browseRate: *browseRate,
			analysisRate: *analyRate, browseFrac: *browseFrac, zipfS: *zipfS, seed: *seed,
		})
		return
	}

	snap, err := adaptive.GenerateSnapshot(adaptive.SynthParams{N: *dim, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	names := adaptive.FieldNames()
	if *nFields < 1 || *nFields > len(names) {
		log.Fatalf("-fields must be 1..%d", len(names))
	}
	names = names[:*nFields]
	fields := make(map[string]*adaptive.Field, len(names))
	payloadBytes := make(map[string]uint64, len(names))
	for _, name := range names {
		f, err := snap.Field(name)
		if err != nil {
			log.Fatal(err)
		}
		fields[name] = f
		payloadBytes[name] = uint64(len(adaptive.MarshalFieldPayload(f)))
	}

	// One h2c connection caps out around 250 concurrent streams, and Go's
	// transport queues the excess client-side — which would measure the
	// client's own throttle, not the server's backpressure. A pool of
	// transports (one connection each) lets the configured client count
	// actually reach the service.
	if *conns < 1 {
		*conns = 1
	}
	pool := make([]*http.Client, *conns)
	for i := range pool {
		pool[i] = &http.Client{Transport: adaptive.NewH2CTransport()}
	}
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	results := make([]result, *clients)
	var logOnce sync.Once
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := &results[c]
			tenant := fmt.Sprintf("tenant-%02d", c%*tenants)
			cl, err := adaptive.NewClient(*url,
				adaptive.WithTenant(tenant),
				adaptive.WithHTTPClient(pool[c%len(pool)]),
				adaptive.WithRetries(*retries, 0, 0),
				adaptive.WithAttemptTimeout(*timeout),
			)
			if err != nil {
				log.Fatal(err)
			}
			ctx := context.Background()
			for i := 0; time.Now().Before(deadline); i++ {
				name := names[(c+i)%len(names)]
				t0 := time.Now()
				res, err := cl.Compress(ctx, name, fields[name])
				lat := time.Since(t0)
				switch {
				case err == nil:
					r.ok++
					r.bytesOut += payloadBytes[name]
					r.bytesIn += uint64(len(res.Archive))
					r.lats = append(r.lats, lat)
					if res.RateLevel > r.maxLevel {
						r.maxLevel = res.RateLevel
					}
				case errors.Is(err, adaptive.ErrOverloaded) || errors.Is(err, adaptive.ErrDraining):
					// Refused and still refused after every backoff the
					// client was allowed: genuine sustained backpressure.
					r.rejected++
				case errors.Is(err, adaptive.ErrCircuitOpen):
					r.circuit++
				default:
					r.failed++
					logOnce.Do(func() { log.Printf("request failed: %v", err) })
				}
			}
			r.counters = cl.Counters()
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	var total result
	var ctr adaptive.ClientCounters
	var lats []time.Duration
	for i := range results {
		total.ok += results[i].ok
		total.rejected += results[i].rejected
		total.circuit += results[i].circuit
		total.failed += results[i].failed
		total.bytesOut += results[i].bytesOut
		total.bytesIn += results[i].bytesIn
		lats = append(lats, results[i].lats...)
		if results[i].maxLevel > total.maxLevel {
			total.maxLevel = results[i].maxLevel
		}
		ctr.Attempts += results[i].counters.Attempts
		ctr.Retries += results[i].counters.Retries
		ctr.Rejected += results[i].counters.Rejected
		ctr.CircuitOpen += results[i].counters.CircuitOpen
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(q*float64(len(lats)-1))]
	}
	p50, p99 := pct(0.50), pct(0.99)
	stepsPerSec := float64(total.ok) / elapsed.Seconds()
	ratio := 0.0
	if total.bytesIn > 0 {
		ratio = float64(total.bytesOut) / float64(total.bytesIn)
	}

	log.Printf("%d clients for %v: %d ok (%.1f steps/sec), %d gave up overloaded, %d circuit-open, %d failed",
		*clients, elapsed.Round(time.Millisecond), total.ok, stepsPerSec, total.rejected, total.circuit, total.failed)
	log.Printf("resilience: %d attempts, %d retries, %d refusals seen (429/503), %d breaker fail-fasts",
		ctr.Attempts, ctr.Retries, ctr.Rejected, ctr.CircuitOpen)
	log.Printf("latency p50 %v p99 %v; aggregate ratio %.2fx; max rate level seen %d",
		p50.Round(time.Microsecond), p99.Round(time.Microsecond), ratio, total.maxLevel)

	if *jsonPath != "" {
		if *label == "" {
			log.Fatal("-json requires -label")
		}
		entry := map[string]any{
			"recorded_at":     time.Now().UTC().Format(time.RFC3339),
			"goos":            runtime.GOOS,
			"goarch":          runtime.GOARCH,
			"clients":         *clients,
			"tenants":         *tenants,
			"field_dim":       *dim,
			"duration_sec":    elapsed.Seconds(),
			"ok":              total.ok,
			"rejected":        total.rejected,
			"circuit_open":    total.circuit,
			"failed":          total.failed,
			"attempts":        ctr.Attempts,
			"retries":         ctr.Retries,
			"rejections_seen": ctr.Rejected,
			"steps_per_sec":   stepsPerSec,
			"latency_p50_ms":  float64(p50) / float64(time.Millisecond),
			"latency_p99_ms":  float64(p99) / float64(time.Millisecond),
			"compress_ratio":  ratio,
			"max_rate_level":  total.maxLevel,
		}
		if err := mergeJSON(*jsonPath, *label, entry); err != nil {
			log.Fatal(err)
		}
		log.Printf("merged run %q into %s", *label, *jsonPath)
	}

	if *maxP99 > 0 && (total.ok == 0 || p99 > *maxP99) {
		log.Fatalf("p99 %v exceeds the %v gate (or nothing succeeded)", p99, *maxP99)
	}
}

type readConfig struct {
	url                      string
	clients, conns, retries  int
	duration, timeout        time.Duration
	label, jsonPath          string
	maxP99                   time.Duration
	stream                   string
	browseRate, analysisRate float64
	browseFrac, zipfS        float64
	seed                     uint64
}

type readResult struct {
	ok, notModified, cacheHits, failed uint64
	bytesIn                            uint64
	lats                               []time.Duration
}

// runRead drives an archived server with a Zipf browse/analysis mix and
// per-client revalidation, then reports read throughput and cache
// behavior.
func runRead(cfg readConfig) {
	probe, err := adaptive.NewClient(cfg.url, adaptive.WithRetries(cfg.retries, 0, 0))
	if err != nil {
		log.Fatal(err)
	}
	m, err := probe.FetchManifest(context.Background(), cfg.stream)
	if err != nil {
		log.Fatalf("manifest for %q: %v", cfg.stream, err)
	}
	var zfpFields, szFields []string
	for _, f := range m.Fields {
		if f.Progressive {
			zfpFields = append(zfpFields, f.Name)
		}
		if f.Preview {
			szFields = append(szFields, f.Name)
		}
	}
	if len(zfpFields) == 0 {
		log.Fatalf("stream %q has no progressive fields to browse", cfg.stream)
	}
	if cfg.conns < 1 {
		cfg.conns = 1
	}
	pool := make([]*http.Client, cfg.conns)
	for i := range pool {
		pool[i] = &http.Client{Transport: adaptive.NewH2CTransport()}
	}

	deadline := time.Now().Add(cfg.duration)
	results := make([]readResult, cfg.clients)
	var wg sync.WaitGroup
	var logOnce sync.Once
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := &results[c]
			cl, err := adaptive.NewClient(cfg.url,
				adaptive.WithHTTPClient(pool[c%len(pool)]),
				adaptive.WithRetries(cfg.retries, 0, 0),
				adaptive.WithAttemptTimeout(cfg.timeout),
			)
			if err != nil {
				log.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(cfg.seed) + int64(c)))
			// Zipf over steps: newest snapshots are the hot ones, so rank 0
			// maps to the last step.
			zipf := rand.NewZipf(rng, cfg.zipfS, 1, uint64(m.Steps-1))
			etags := make(map[string]string)
			ctx := context.Background()
			for time.Now().Before(deadline) {
				step := m.Steps - 1 - int(zipf.Uint64())
				var field string
				opt := adaptive.ArchiveFetchOptions{}
				if rng.Float64() < cfg.browseFrac {
					// Browse: low-rate splice, occasionally an sz preview.
					if len(szFields) > 0 && rng.Float64() < 0.2 {
						field = szFields[rng.Intn(len(szFields))]
						opt.PreviewOctaves = 2
					} else {
						field = zfpFields[rng.Intn(len(zfpFields))]
						opt.Rate = cfg.browseRate
					}
				} else {
					field = zfpFields[rng.Intn(len(zfpFields))]
					opt.Rate = cfg.analysisRate
				}
				key := fmt.Sprintf("%d/%s/%g/%d", step, field, opt.Rate, opt.PreviewOctaves)
				opt.ETag = etags[key]
				t0 := time.Now()
				res, err := cl.FetchField(ctx, cfg.stream, step, field, opt)
				lat := time.Since(t0)
				if err != nil {
					r.failed++
					logOnce.Do(func() { log.Printf("read failed: %v", err) })
					continue
				}
				r.ok++
				r.lats = append(r.lats, lat)
				if res.NotModified {
					r.notModified++
				} else {
					r.bytesIn += uint64(len(res.Body))
					etags[key] = res.ETag
				}
				if res.CacheHit {
					r.cacheHits++
				}
			}
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	var total readResult
	var lats []time.Duration
	for i := range results {
		total.ok += results[i].ok
		total.notModified += results[i].notModified
		total.cacheHits += results[i].cacheHits
		total.failed += results[i].failed
		total.bytesIn += results[i].bytesIn
		lats = append(lats, results[i].lats...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(q*float64(len(lats)-1))]
	}
	p50, p99 := pct(0.50), pct(0.99)
	stepsPerSec := float64(total.ok) / elapsed.Seconds()

	st, err := probe.ArchiveStats(context.Background())
	if err != nil {
		log.Fatalf("archive stats: %v", err)
	}
	hitRatio := 0.0
	if lookups := st.Cache.Hits + st.Cache.Misses; lookups > 0 {
		hitRatio = float64(st.Cache.Hits) / float64(lookups)
	}
	log.Printf("%d readers for %v: %d ok (%.1f steps/sec), %d revalidated (304), %d failed",
		cfg.clients, elapsed.Round(time.Millisecond), total.ok, stepsPerSec, total.notModified, total.failed)
	log.Printf("server cache: %.1f%% hit ratio (%d hits / %d misses / %d evictions), %d splices, %d preview decodes, %d merged flights",
		100*hitRatio, st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions, st.Splices, st.PreviewDecodes, st.Cache.SingleflightMerged)
	log.Printf("latency p50 %v p99 %v; %.1f MiB served",
		p50.Round(time.Microsecond), p99.Round(time.Microsecond), float64(total.bytesIn)/(1<<20))

	if cfg.jsonPath != "" {
		if cfg.label == "" {
			log.Fatal("-json requires -label")
		}
		entry := map[string]any{
			"recorded_at":     time.Now().UTC().Format(time.RFC3339),
			"goos":            runtime.GOOS,
			"goarch":          runtime.GOARCH,
			"mode":            "read",
			"clients":         cfg.clients,
			"stream_steps":    m.Steps,
			"duration_sec":    elapsed.Seconds(),
			"ok":              total.ok,
			"not_modified":    total.notModified,
			"failed":          total.failed,
			"steps_per_sec":   stepsPerSec,
			"cache_hit_ratio": hitRatio,
			"splices":         st.Splices,
			"preview_decodes": st.PreviewDecodes,
			"latency_p50_ms":  float64(p50) / float64(time.Millisecond),
			"latency_p99_ms":  float64(p99) / float64(time.Millisecond),
			"bytes_served":    total.bytesIn,
		}
		if err := mergeJSON(cfg.jsonPath, cfg.label, entry); err != nil {
			log.Fatal(err)
		}
		log.Printf("merged run %q into %s", cfg.label, cfg.jsonPath)
	}
	if cfg.maxP99 > 0 && (total.ok == 0 || p99 > cfg.maxP99) {
		log.Fatalf("p99 %v exceeds the %v gate (or nothing succeeded)", p99, cfg.maxP99)
	}
}

// mergeJSON upserts runs[label] in a BENCH-style trajectory file.
func mergeJSON(path, label string, entry map[string]any) error {
	doc := map[string]any{
		"description": "adaptived service load benchmark (cmd/loadgen); steps/sec and latencies are machine-dependent, compare labels from the same machine only.",
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not JSON: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	runs, _ := doc["runs"].(map[string]any)
	if runs == nil {
		runs = make(map[string]any)
	}
	runs[label] = entry
	doc["runs"] = runs
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
