package archiveserve

import (
	"errors"
	"strconv"
	"strings"
)

// errRangeUnsatisfiable marks a syntactically valid Range that selects no
// bytes of the representation — the one case RFC 9110 answers with 416
// rather than ignoring the header.
var errRangeUnsatisfiable = errors.New("archiveserve: range not satisfiable")

// parseRange interprets a Range header over a representation of size
// bytes. It supports the single-range forms "bytes=a-b", "bytes=a-", and
// "bytes=-n"; ok reports whether a range applies (false → serve the full
// 200 representation). Following RFC 9110's permission to ignore ranges
// it cannot or chooses not to honor, anything malformed — wrong unit,
// multiple ranges, garbage bounds, an inverted a-b — yields (ok=false,
// err=nil); only a well-formed range that selects nothing (first byte at
// or past the end, or a zero-length suffix) returns errRangeUnsatisfiable,
// which the caller answers with 416 and Content-Range: bytes */size.
func parseRange(spec string, size int64) (off, n int64, ok bool, err error) {
	const unit = "bytes="
	if spec == "" || !strings.HasPrefix(spec, unit) {
		return 0, 0, false, nil
	}
	r := strings.TrimSpace(spec[len(unit):])
	if r == "" || strings.ContainsAny(r, ", ") {
		// Multi-range responses (multipart/byteranges) are deliberately
		// unsupported: serve the whole representation instead.
		return 0, 0, false, nil
	}
	dash := strings.Index(r, "-")
	if dash < 0 {
		return 0, 0, false, nil
	}
	first, last := r[:dash], r[dash+1:]
	if first == "" {
		// Suffix form "-n": the final n bytes.
		suf, perr := parseRangeInt(last)
		if perr != nil {
			return 0, 0, false, nil
		}
		if suf > size {
			suf = size
		}
		if suf == 0 {
			// "-0" selects nothing, and so does any suffix of an empty
			// representation.
			return 0, 0, false, errRangeUnsatisfiable
		}
		return size - suf, suf, true, nil
	}
	start, perr := parseRangeInt(first)
	if perr != nil {
		return 0, 0, false, nil
	}
	if start >= size {
		return 0, 0, false, errRangeUnsatisfiable
	}
	if last == "" {
		// Open form "a-": from a to the end.
		return start, size - start, true, nil
	}
	end, perr := parseRangeInt(last)
	if perr != nil || end < start {
		return 0, 0, false, nil
	}
	if end >= size {
		end = size - 1
	}
	return start, end - start + 1, true, nil
}

// parseRangeInt parses a non-negative decimal bound. Signs, empty
// strings, non-digits, and values beyond int64 all error (the caller
// ignores the range).
func parseRangeInt(s string) (int64, error) {
	if s == "" || s[0] == '+' || s[0] == '-' {
		return 0, strconv.ErrSyntax
	}
	return strconv.ParseInt(s, 10, 64)
}

// etagMatch implements If-None-Match's weak comparison against one strong
// ETag: "*" matches anything, and each listed candidate matches if its
// opaque-tag (any W/ prefix dropped) equals ours. Commas cannot occur
// inside an entity tag, so splitting on them is exact.
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		if cand == "*" {
			return true
		}
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}
