package server

import (
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic holdoff tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time            { return c.t }
func (c *fakeClock) advance(d time.Duration)   { c.t = c.t.Add(d) }

func TestLoadControllerDisabledStaysAtFullQuality(t *testing.T) {
	clk := newFakeClock()
	lc := newLoadController(AdaptConfig{Enabled: false, HighQueue: 1}, clk.now)
	for i := 0; i < 100; i++ {
		lc.observe(time.Second)
		clk.advance(time.Second)
		lc.adjust(1000)
	}
	if level, scale := lc.levelScale(); level != 0 || scale != 1 {
		t.Fatalf("disabled controller moved: level %d scale %g", level, scale)
	}
}

func TestLoadControllerStepsUpOnQueuePressure(t *testing.T) {
	clk := newFakeClock()
	cfg := AdaptConfig{Enabled: true, MaxLevel: 3, EBStep: 2, HighQueue: 10, Holdoff: time.Second}
	lc := newLoadController(cfg, clk.now)

	// Within the holdoff nothing moves, no matter the pressure.
	lc.adjust(1000)
	if level, _ := lc.levelScale(); level != 0 {
		t.Fatalf("stepped inside holdoff: level %d", level)
	}

	// One step per holdoff window, up to MaxLevel.
	for want := 1; want <= 4; want++ {
		clk.advance(cfg.Holdoff)
		lc.adjust(1000)
		level, scale := lc.levelScale()
		wantLevel := want
		if wantLevel > cfg.MaxLevel {
			wantLevel = cfg.MaxLevel
		}
		if level != wantLevel {
			t.Fatalf("after %d windows: level %d, want %d", want, level, wantLevel)
		}
		wantScale := 1.0
		for i := 0; i < wantLevel; i++ {
			wantScale *= cfg.EBStep
		}
		if scale != wantScale {
			t.Fatalf("level %d scale %g, want %g", level, scale, wantScale)
		}
	}
}

func TestLoadControllerStepsUpOnLatencySLO(t *testing.T) {
	clk := newFakeClock()
	cfg := AdaptConfig{Enabled: true, LatencySLO: 100 * time.Millisecond, HighQueue: 1 << 30, Holdoff: time.Second}
	lc := newLoadController(cfg, clk.now)

	// Too few samples: the p99 is not trusted yet.
	for i := 0; i < minAdaptSamples-1; i++ {
		lc.observe(time.Second)
	}
	clk.advance(cfg.Holdoff)
	lc.adjust(0)
	if level, _ := lc.levelScale(); level != 0 {
		t.Fatalf("stepped on %d samples", minAdaptSamples-1)
	}
	lc.observe(time.Second)
	lc.adjust(0)
	if level, _ := lc.levelScale(); level != 1 {
		t.Fatalf("p99 10× over SLO with %d samples: level %d, want 1", minAdaptSamples, level)
	}
}

func TestLoadControllerStepsBackDownWhenCalm(t *testing.T) {
	clk := newFakeClock()
	// Window == minAdaptSamples so a full window of fresh samples is
	// exactly one refill; MaxLevel 1 so hot latency cannot mask a wrong
	// step-down as a step-up.
	cfg := AdaptConfig{
		Enabled: true, MaxLevel: 1, LatencySLO: 100 * time.Millisecond,
		HighQueue: 10, LowQueue: 2, Holdoff: time.Second, Window: minAdaptSamples,
	}
	lc := newLoadController(cfg, clk.now)

	clk.advance(cfg.Holdoff)
	lc.adjust(100) // queue pressure: up to 1
	if level, _ := lc.levelScale(); level != 1 {
		t.Fatalf("setup: level %d, want 1", level)
	}

	// Queue low but latency still hot: stay.
	for i := 0; i < minAdaptSamples; i++ {
		lc.observe(time.Second)
	}
	clk.advance(cfg.Holdoff)
	lc.adjust(0)
	if level, _ := lc.levelScale(); level != 1 {
		t.Fatalf("stepped down while p99 hot: level %d", level)
	}

	// An empty window is not calm either — the window resets on change,
	// and pressure evidence must be re-earned before stepping back.
	lc.mu.Lock()
	lc.next, lc.count = 0, 0
	lc.mu.Unlock()
	clk.advance(cfg.Holdoff)
	lc.adjust(0)
	if level, _ := lc.levelScale(); level != 1 {
		t.Fatalf("stepped down on an empty window: level %d", level)
	}

	// Queue low and a full window well under SLO: step down.
	for i := 0; i < minAdaptSamples; i++ {
		lc.observe(time.Millisecond)
	}
	clk.advance(cfg.Holdoff)
	lc.adjust(0)
	if level, _ := lc.levelScale(); level != 0 {
		t.Fatalf("calm but did not step down: level %d", level)
	}
	_, _, _, _, ups, downs := lc.snapshot()
	if ups != 1 || downs != 1 {
		t.Fatalf("ups/downs = %d/%d, want 1/1", ups, downs)
	}
}
