package stats

import "math"

// QuantizedEntropy estimates the Shannon entropy (bits/value) of a float32
// slice after quantizing it into the given number of levels across its value
// range. The paper notes partition entropy correlates with the rate
// coefficient C_m but is more expensive than the mean; we keep it available
// for the C_m-source ablation.
func QuantizedEntropy(xs []float32, levels int) float64 {
	if len(xs) == 0 || levels <= 1 {
		return 0
	}
	var mom Moments
	mom.AddSlice(xs)
	lo, hi := mom.Min(), mom.Max()
	if hi == lo {
		return 0
	}
	counts := make([]int, levels)
	scale := float64(levels) / (hi - lo)
	for _, x := range xs {
		i := int((float64(x) - lo) * scale)
		if i >= levels {
			i = levels - 1
		}
		if i < 0 {
			i = 0
		}
		counts[i]++
	}
	n := float64(len(xs))
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// SymbolEntropy returns the Shannon entropy (bits/symbol) of an integer
// symbol stream, used to sanity-check the Huffman coder against its
// theoretical lower bound.
func SymbolEntropy(symbols []int) float64 {
	if len(symbols) == 0 {
		return 0
	}
	counts := make(map[int]int, 256)
	for _, s := range symbols {
		counts[s]++
	}
	n := float64(len(symbols))
	var h float64
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}
