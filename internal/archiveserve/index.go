package archiveserve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/apierr"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/zfp"
)

// Sidecar index ("ACSI", version 1): the persisted per-block bit-offset
// tables of every ZFP partition in a v3 stream, so the server can splice
// any lower rate without rescanning block boundaries at open.
//
//	offset size  field
//	0      4     magic "ACSI"
//	4      4     version (1)
//	8      4     footer CRC32-C of the indexed stream (binding)
//	12     4     step count
//	per step:  uint32 field count
//	  per field (sorted name order, as in the step block):
//	    uint16 name length + name bytes
//	    uint32 partition count
//	    per partition: uint32 entry count N,
//	                   N × uint32 absolute bit offsets (0 entries for
//	                   non-ZFP partitions — nothing to splice)
//	trailer: uint32 CRC32-C of everything above
//
// The footer CRC binds the sidecar to one exact stream: the v3 footer
// covers every step's offset and length, so any append, truncation, or
// rewrite of the stream changes it. A sidecar that fails the binding (or
// its own trailer CRC) is discarded and rebuilt by scanning the stream —
// zfp.Reindex recovers the identical table, the sidecar is purely an
// open-time optimization.
const (
	sidecarMagic   = "ACSI"
	sidecarVersion = 1
	// SidecarSuffix is appended to the stream path to name its sidecar.
	SidecarSuffix = ".idx"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// sidecar is the in-memory form: steps[i][j] holds field j of step i (the
// step block's sorted field order), each a per-partition starts table.
type sidecar struct {
	footerCRC uint32
	steps     [][]fieldIndex
}

type fieldIndex struct {
	name   string
	starts [][]int // per partition; nil for non-ZFP partitions
}

// field returns the named field's index within step i, or nil.
func (sc *sidecar) field(step int, name string) *fieldIndex {
	if step < 0 || step >= len(sc.steps) {
		return nil
	}
	for i := range sc.steps[step] {
		if sc.steps[step][i].name == name {
			return &sc.steps[step][i]
		}
	}
	return nil
}

func encodeSidecar(sc *sidecar) []byte {
	var buf []byte
	var s [4]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(s[:], v)
		buf = append(buf, s[:4]...)
	}
	buf = append(buf, sidecarMagic...)
	u32(sidecarVersion)
	u32(sc.footerCRC)
	u32(uint32(len(sc.steps)))
	for _, step := range sc.steps {
		u32(uint32(len(step)))
		for _, fi := range step {
			binary.LittleEndian.PutUint16(s[:2], uint16(len(fi.name)))
			buf = append(buf, s[:2]...)
			buf = append(buf, fi.name...)
			u32(uint32(len(fi.starts)))
			for _, starts := range fi.starts {
				u32(uint32(len(starts)))
				for _, off := range starts {
					u32(uint32(off))
				}
			}
		}
	}
	u32(crc32.Checksum(buf, castagnoli))
	return buf
}

func parseSidecar(data []byte) (*sidecar, error) {
	corrupt := func(what string) error {
		return fmt.Errorf("archiveserve: %w: sidecar %s", apierr.ErrCorruptArchive, what)
	}
	if len(data) < 20 {
		return nil, corrupt("shorter than header")
	}
	if string(data[0:4]) != sidecarMagic {
		return nil, corrupt(fmt.Sprintf("has bad magic %q", data[0:4]))
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != sidecarVersion {
		return nil, corrupt(fmt.Sprintf("has unsupported version %d", v))
	}
	body, trailer := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != trailer {
		return nil, corrupt("CRC mismatch")
	}
	sc := &sidecar{footerCRC: binary.LittleEndian.Uint32(data[8:12])}
	stepCount := int(binary.LittleEndian.Uint32(data[12:16]))
	pos := 16
	// Every count claimed below costs at least 4 bytes of payload, so
	// bounding counts by the remaining bytes keeps hostile headers from
	// driving preallocation.
	remaining := func() int { return len(body) - pos }
	if stepCount < 0 || stepCount > remaining()/4 {
		return nil, corrupt(fmt.Sprintf("claims %d steps", stepCount))
	}
	u32at := func() (uint32, bool) {
		if pos+4 > len(body) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(body[pos:])
		pos += 4
		return v, true
	}
	sc.steps = make([][]fieldIndex, 0, stepCount)
	for s := 0; s < stepCount; s++ {
		fc, ok := u32at()
		if !ok || int(fc) > remaining()/4+1 {
			return nil, corrupt(fmt.Sprintf("truncated at step %d", s))
		}
		fields := make([]fieldIndex, 0, fc)
		for f := 0; f < int(fc); f++ {
			if pos+2 > len(body) {
				return nil, corrupt(fmt.Sprintf("truncated at step %d field %d", s, f))
			}
			nameLen := int(binary.LittleEndian.Uint16(body[pos:]))
			pos += 2
			if nameLen == 0 || pos+nameLen > len(body) {
				return nil, corrupt(fmt.Sprintf("truncated inside step %d field %d name", s, f))
			}
			fi := fieldIndex{name: string(body[pos : pos+nameLen])}
			pos += nameLen
			pc, ok := u32at()
			if !ok || int(pc) > remaining()/4+1 {
				return nil, corrupt(fmt.Sprintf("truncated at %q partition count", fi.name))
			}
			fi.starts = make([][]int, 0, pc)
			for p := 0; p < int(pc); p++ {
				n, ok := u32at()
				if !ok || int(n) > remaining()/4+1 {
					return nil, corrupt(fmt.Sprintf("truncated at %q partition %d", fi.name, p))
				}
				var starts []int
				if n > 0 {
					starts = make([]int, n)
					for i := range starts {
						v, ok := u32at()
						if !ok {
							return nil, corrupt(fmt.Sprintf("truncated inside %q partition %d offsets", fi.name, p))
						}
						starts[i] = int(v)
					}
				}
				fi.starts = append(fi.starts, starts)
			}
			fields = append(fields, fi)
		}
		sc.steps = append(sc.steps, fields)
	}
	if pos != len(body) {
		return nil, corrupt(fmt.Sprintf("has %d trailing bytes", len(body)-pos))
	}
	return sc, nil
}

// footerRegionCRC checksums a v3 stream's footer region [indexOff, size)
// — the sidecar's binding to one exact stream. The caller must have
// validated the stream with core.OpenStream already; this re-reads only
// the trailer to locate the index.
func footerRegionCRC(r io.ReaderAt, size int64) (uint32, error) {
	const trailerBytes = 16
	var trailer [trailerBytes]byte
	if _, err := r.ReadAt(trailer[:], size-trailerBytes); err != nil {
		return 0, fmt.Errorf("archiveserve: stream trailer: %w", err)
	}
	indexOff := int64(binary.LittleEndian.Uint64(trailer[4:12]))
	if indexOff < 0 || indexOff > size-trailerBytes {
		return 0, fmt.Errorf("archiveserve: %w: footer offset %d outside stream", apierr.ErrCorruptArchive, indexOff)
	}
	buf := make([]byte, size-indexOff)
	if _, err := r.ReadAt(buf, indexOff); err != nil {
		return 0, fmt.Errorf("archiveserve: stream footer: %w", err)
	}
	return crc32.Checksum(buf, castagnoli), nil
}

// buildSidecar reconstructs the bit-offset tables by scanning the stream:
// every ZFP partition body is parsed and its block boundaries re-derived
// with zfp.Reindex (identical to what compression recorded). This is the
// recovery path for a missing or stale sidecar — O(payload) once, then
// persisted again.
func buildSidecar(r io.ReaderAt, sr *core.StreamReader, footerCRC uint32) (*sidecar, error) {
	sc := &sidecar{footerCRC: footerCRC}
	for step := 0; step < sr.Steps(); step++ {
		layouts, err := sr.StepLayout(step)
		if err != nil {
			return nil, err
		}
		fields := make([]fieldIndex, 0, len(layouts))
		for _, fl := range layouts {
			fi := fieldIndex{name: fl.Name, starts: make([][]int, len(fl.Partitions))}
			for p, pl := range fl.Partitions {
				if pl.Codec != codec.ZFP {
					continue
				}
				body := make([]byte, pl.BodyLength)
				if _, err := r.ReadAt(body, pl.BodyOffset); err != nil {
					return nil, fmt.Errorf("archiveserve: step %d field %q partition %d: %w", step, fl.Name, p, err)
				}
				c, err := zfp.Parse(body)
				if err != nil {
					return nil, fmt.Errorf("archiveserve: step %d field %q partition %d: %w", step, fl.Name, p, err)
				}
				ix, err := zfp.Reindex(c)
				if err != nil {
					return nil, fmt.Errorf("archiveserve: step %d field %q partition %d: %w", step, fl.Name, p, err)
				}
				fi.starts[p] = ix.Starts()
			}
			fields = append(fields, fi)
		}
		sc.steps = append(sc.steps, fields)
	}
	return sc, nil
}
