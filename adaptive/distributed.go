package adaptive

import (
	"context"
	"io"

	"repro/internal/apierr"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/mpinet"
	"repro/internal/pipeline"
)

// Distributed operation. A distributed run is N rank processes joined to a
// coordinator over TCP (rank 0's process usually hosts it). Each rank
// consumes the same deterministic source, compresses the partitions it owns
// through the in situ protocol, and streams them into its own shard file;
// after the run, MergeShards reassembles the shards into the exact stream a
// single-process run would have written — byte-identical, regardless of
// rank count or mid-run rank failures.
//
// When a rank dies (crash, kill -9, network cut), the transport's failure
// detector surfaces a typed *RankFailedError from the pending collective
// instead of hanging. Survivors roll back the uncommitted step, recompute
// the partition assignment over the survivor set, and retry under a new
// membership epoch. See cmd/adaptivemd for the complete launcher.

// ErrRankFailed marks a collective aborted because a peer rank died. The
// typed form, RankFailedError, names the rank and the membership epoch that
// its failure opened. Recoverable: re-issue the collective and the
// surviving ranks proceed without the dead one.
var ErrRankFailed = apierr.ErrRankFailed

// RankFailedError is the typed form of ErrRankFailed: errors.As extracts
// the failed rank and the new epoch, while errors.Is on the same error
// still matches the sentinel. Rank 0 failing is terminal — it hosts the
// coordinator.
type RankFailedError = apierr.RankFailedError

// Transport is the rank-to-rank communication layer behind a Comm: the
// in-process world used by CompressInSitu and RunWorld, or a NetTransport
// joined over TCP.
type Transport = mpi.Transport

// NetTransport is one rank's TCP connection to a distributed world. Join
// returns it connected and failure-detected (heartbeats both ways).
type NetTransport = mpinet.Transport

// Coordinator is the membership and collective coordinator of a
// distributed world; run one (usually in the rank 0 process) and point
// every rank's Join at its address.
type Coordinator = mpinet.Coordinator

// NetConfig tunes a distributed world's failure detector and timeouts.
// The zero value gives production defaults (500ms heartbeats, 2s failure
// timeout).
type NetConfig = mpinet.Config

// ListenCoordinator starts a coordinator for a world of size ranks on addr
// (e.g. "127.0.0.1:0"; Addr reports the bound address).
func ListenCoordinator(addr string, size int, cfg NetConfig) (*Coordinator, error) {
	return mpinet.Listen(addr, size, cfg)
}

// JoinWorld connects this process's rank to the coordinator. Every rank in
// [0, size) must join exactly once.
func JoinWorld(addr string, rank, size int, cfg NetConfig) (*NetTransport, error) {
	return mpinet.Join(addr, rank, size, cfg)
}

// RunWorld runs fn once per rank of an in-process world of the given size
// (one goroutine each) — the zero-setup way to exercise the distributed
// path in tests and single-machine runs. A rank that panics or returns an
// error poisons the world: every other rank's pending and future
// collectives fail fast with a *RankFailedError instead of deadlocking.
func RunWorld(size int, fn func(Transport) error) error {
	return mpi.Run(size, func(c *mpi.Comm) error { return fn(c.Transport()) })
}

// EngineConfig is the compression engine configuration embedded in a
// RankConfig. Unlike System construction (functional options), distributed
// ranks take the engine config as a plain value so that "identical on every
// rank" is a comparable, printable artifact.
type EngineConfig = core.Config

// RankConfig configures one rank of a distributed run (identical on every
// rank).
type RankConfig = pipeline.RankConfig

// RankRunStats reports one rank's view of a distributed run.
type RankRunStats = pipeline.RankRunStats

// RunRank runs this rank's side of a distributed compression run: it
// consumes src until the end of the stream, writes this rank's shard
// stream to shard (use a file — rollback after a peer failure needs
// Truncate+Seek), and commits each step with a barrier. Peer failures are
// absorbed by rebalance-and-retry; the error return is reserved for
// terminal conditions (bad config, coordinator loss, local I/O failure).
func RunRank(ctx context.Context, t Transport, src Source, shard io.Writer, cfg RankConfig) (*RankRunStats, error) {
	return pipeline.RunRank(ctx, t, src, shard, cfg)
}

// ShardInput is one rank's shard stream handed to MergeShards.
type ShardInput = core.ShardInput

// MergeReport describes what MergeShards assembled.
type MergeReport = core.MergeReport

// MergeShards reassembles per-rank shard streams into one plain v3 stream,
// byte-identical to a single-process run of the same source and
// configuration. Torn shards (a killed rank's) are salvaged, and the
// byte-identical duplicates a retried step leaves behind are deduplicated.
// nParts is the partition count every field must tile to. Include every
// rank's shard — the dead rank's committed steps live only in its file.
func MergeShards(w io.Writer, shards []ShardInput, nParts int) (*MergeReport, error) {
	return core.MergeShards(w, shards, nParts)
}

// AssignPartitions deterministically shards nParts partitions across the
// alive ranks (round-robin over the sorted rank list) — the pure function
// every rank evaluates independently to agree on ownership without
// negotiation, before and after failures.
func AssignPartitions(nParts int, alive []int) map[int][]int {
	return core.AssignPartitions(nParts, alive)
}
